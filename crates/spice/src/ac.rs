//! AC small-signal (frequency-domain) analysis.
//!
//! The MSS sensor's readout bandwidth and the RF mode's interface circuits
//! need frequency response, not just transients. The analysis:
//!
//! 1. solves the DC operating point (nonlinear devices linearised there),
//! 2. for each frequency assembles the complex MNA system — resistors and
//!    MTJs as real conductances, capacitors as `jωC`, MOSFETs as their
//!    small-signal `(g_m, g_ds)` at the operating point,
//! 3. applies a unit AC excitation to one chosen source (every other source
//!    is AC-grounded) and solves for the complex node voltages.
//!
//! Inductors are not modelled (none of the paper's cells need them; the
//! spin-torque oscillator itself is handled by the LLG model in `mss-mtj`).

use mss_units::complex::Complex;

use crate::analysis::dc_operating_point;
use crate::netlist::{Element, Netlist, NodeId};
use crate::SpiceError;

/// Result of an AC sweep.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    node_names: Vec<String>,
    /// `voltages[f][node]` — complex node voltage at frequency index `f`.
    voltages: Vec<Vec<Complex>>,
}

impl AcResult {
    /// The swept frequencies, hertz.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Complex transfer to a node (unit excitation ⇒ this is the transfer
    /// function H(jω)).
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] when the node does not exist.
    pub fn transfer(&self, node: &str) -> Result<Vec<Complex>, SpiceError> {
        let key = node.to_ascii_lowercase();
        let idx = self
            .node_names
            .iter()
            .position(|n| *n == key)
            .ok_or(SpiceError::UnknownNode(key))?;
        Ok(self.voltages.iter().map(|row| row[idx]).collect())
    }

    /// Magnitude response |H| at a node.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] when the node does not exist.
    pub fn magnitude(&self, node: &str) -> Result<Vec<f64>, SpiceError> {
        Ok(self.transfer(node)?.into_iter().map(Complex::abs).collect())
    }

    /// Phase response arg(H) at a node, radians.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] when the node does not exist.
    pub fn phase(&self, node: &str) -> Result<Vec<f64>, SpiceError> {
        Ok(self.transfer(node)?.into_iter().map(Complex::arg).collect())
    }

    /// The −3 dB corner frequency of a node's magnitude response relative
    /// to its value at the lowest swept frequency; `None` if the response
    /// never drops below 1/√2 of that reference.
    pub fn corner_frequency(&self, node: &str) -> Result<Option<f64>, SpiceError> {
        let mag = self.magnitude(node)?;
        let reference = mag.first().copied().unwrap_or(0.0);
        if reference <= 0.0 {
            return Ok(None);
        }
        let threshold = reference / std::f64::consts::SQRT_2;
        for (k, &m) in mag.iter().enumerate() {
            if m < threshold {
                if k == 0 {
                    return Ok(Some(self.freqs[0]));
                }
                // Log-linear interpolation between the straddling points.
                let (f0, f1) = (self.freqs[k - 1], self.freqs[k]);
                let (m0, m1) = (mag[k - 1], m);
                let t = (m0 - threshold) / (m0 - m1);
                return Ok(Some(f0 * (f1 / f0).powf(t)));
            }
        }
        Ok(None)
    }
}

/// Generates `n` logarithmically spaced frequencies over `[f_start, f_stop]`.
///
/// # Panics
///
/// Panics if the bounds are non-positive or inverted, or `n < 2`.
pub fn log_sweep(f_start: f64, f_stop: f64, n: usize) -> Vec<f64> {
    assert!(
        f_start > 0.0 && f_stop > f_start && n >= 2,
        "bad sweep spec"
    );
    let ratio = (f_stop / f_start).ln();
    (0..n)
        .map(|k| f_start * (ratio * k as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Runs an AC sweep with a unit AC excitation on the named voltage source.
///
/// # Errors
///
/// - [`SpiceError::UnknownNode`] when `ac_source` is not a voltage source
///   in the netlist,
/// - DC-operating-point and solver failures propagate.
pub fn ac_analysis(
    netlist: &Netlist,
    ac_source: &str,
    freqs: &[f64],
) -> Result<AcResult, SpiceError> {
    // 1. Operating point for the small-signal linearisation.
    let dc = dc_operating_point(netlist)?;
    let has_source = netlist
        .elements()
        .iter()
        .any(|e| matches!(e, Element::VSource { name, .. } if name == ac_source));
    if !has_source {
        return Err(SpiceError::UnknownNode(ac_source.to_string()));
    }

    let n_nodes = netlist.node_count() - 1;
    let n_vsrc = netlist.vsource_count();
    let dim = n_nodes + n_vsrc;
    let idx = |n: NodeId| -> Option<usize> { (!n.is_ground()).then(|| n.0 - 1) };
    let vdc = |n: NodeId| -> f64 {
        if n.is_ground() {
            0.0
        } else {
            dc.node_voltage(netlist.node_name(n)).unwrap_or(0.0)
        }
    };

    let node_names: Vec<String> = (0..netlist.node_count())
        .map(|i| netlist.node_name(NodeId(i)).to_string())
        .collect();

    let mut voltages = Vec::with_capacity(freqs.len());
    for &f in freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        let mut m = vec![vec![Complex::ZERO; dim]; dim];
        let mut rhs = vec![Complex::ZERO; dim];
        let stamp_admittance = |m: &mut Vec<Vec<Complex>>, a: NodeId, b: NodeId, y: Complex| {
            if let Some(ia) = idx(a) {
                m[ia][ia] += y;
                if let Some(ib) = idx(b) {
                    m[ia][ib] += -y;
                    m[ib][ia] += -y;
                    m[ib][ib] += y;
                }
            } else if let Some(ib) = idx(b) {
                m[ib][ib] += y;
            }
        };
        // gmin keeps floating nets solvable, as in the time domain.
        for (i, row) in m.iter_mut().enumerate().take(n_nodes) {
            row[i] += Complex::real(1e-12);
        }
        let mut vk = 0usize;
        for e in netlist.elements() {
            match e {
                Element::Resistor { a, b, ohms, .. } => {
                    stamp_admittance(&mut m, *a, *b, Complex::real(1.0 / ohms));
                }
                Element::Capacitor { a, b, farads, .. } => {
                    stamp_admittance(&mut m, *a, *b, Complex::new(0.0, omega * farads));
                }
                Element::VSource {
                    name, plus, minus, ..
                } => {
                    let row = n_nodes + vk;
                    vk += 1;
                    if let Some(ip) = idx(*plus) {
                        m[ip][row] += Complex::ONE;
                        m[row][ip] += Complex::ONE;
                    }
                    if let Some(im) = idx(*minus) {
                        m[im][row] += -Complex::ONE;
                        m[row][im] += -Complex::ONE;
                    }
                    rhs[row] = if name == ac_source {
                        Complex::ONE
                    } else {
                        Complex::ZERO
                    };
                }
                Element::ISource { .. } => {
                    // Independent current sources are AC-open.
                }
                Element::Mosfet {
                    d,
                    g,
                    s,
                    model,
                    geom,
                    ..
                } => {
                    let op = model.evaluate(geom, vdc(*g) - vdc(*s), vdc(*d) - vdc(*s));
                    stamp_admittance(&mut m, *d, *s, Complex::real(op.gds));
                    // VCCS gm from (g,s) into (d,s).
                    let (di, gi, si) = (idx(*d), idx(*g), idx(*s));
                    if let Some(di) = di {
                        if let Some(gi) = gi {
                            m[di][gi] += Complex::real(op.gm);
                        }
                        if let Some(si) = si {
                            m[di][si] += Complex::real(-op.gm);
                        }
                    }
                    if let Some(si) = si {
                        if let Some(gi) = gi {
                            m[si][gi] += Complex::real(-op.gm);
                        }
                        m[si][si] += Complex::real(op.gm);
                    }
                }
                Element::Mtj {
                    plus,
                    minus,
                    device,
                    ..
                } => {
                    let v = vdc(*plus) - vdc(*minus);
                    stamp_admittance(
                        &mut m,
                        *plus,
                        *minus,
                        Complex::real(1.0 / device.resistance(v)),
                    );
                }
                Element::MtjSot {
                    read,
                    shared,
                    write,
                    channel_ohms,
                    device,
                    ..
                } => {
                    let v = vdc(*read) - vdc(*shared);
                    stamp_admittance(
                        &mut m,
                        *read,
                        *shared,
                        Complex::real(1.0 / device.resistance(v)),
                    );
                    stamp_admittance(&mut m, *shared, *write, Complex::real(1.0 / channel_ohms));
                }
            }
        }
        let x = csolve(m, rhs)?;
        let mut row = Vec::with_capacity(netlist.node_count());
        row.push(Complex::ZERO); // ground
        row.extend_from_slice(&x[..n_nodes]);
        voltages.push(row);
    }

    Ok(AcResult {
        freqs: freqs.to_vec(),
        node_names,
        voltages,
    })
}

/// Complex LU solve with partial pivoting (dense; AC systems here are tiny).
#[allow(clippy::needless_range_loop)]
fn csolve(mut a: Vec<Vec<Complex>>, mut b: Vec<Complex>) -> Result<Vec<Complex>, SpiceError> {
    let n = b.len();
    for k in 0..n {
        let mut piv = k;
        let mut max = a[k][k].abs();
        for r in (k + 1)..n {
            let v = a[r][k].abs();
            if v > max {
                max = v;
                piv = r;
            }
        }
        if max < 1e-300 {
            return Err(SpiceError::SingularMatrix);
        }
        if piv != k {
            a.swap(k, piv);
            b.swap(k, piv);
        }
        let pivot = a[k][k];
        for r in (k + 1)..n {
            let factor = a[r][k] / pivot;
            if factor.abs() == 0.0 {
                continue;
            }
            a[r][k] = Complex::ZERO;
            for c in (k + 1)..n {
                let sub = factor * a[k][c];
                a[r][c] = a[r][c] - sub;
            }
            b[r] = b[r] - factor * b[k];
        }
    }
    let mut x = vec![Complex::ZERO; n];
    for k in (0..n).rev() {
        let mut sum = b[k];
        for c in (k + 1)..n {
            sum = sum - a[k][c] * x[c];
        }
        x[k] = sum / a[k][k];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::{MosGeometry, MosModel};
    use crate::waveform::Waveform;

    fn rc_lowpass() -> Netlist {
        let mut nl = Netlist::new();
        nl.add_vsource("vin", "in", "0", Waveform::dc(0.0)).unwrap();
        nl.add_resistor("r1", "in", "out", 1e3).unwrap();
        nl.add_capacitor("c1", "out", "0", 1e-12).unwrap();
        nl
    }

    #[test]
    fn rc_lowpass_corner_frequency() {
        let nl = rc_lowpass();
        // f_c = 1/(2 pi RC) = 159.15 MHz.
        let freqs = log_sweep(1e6, 10e9, 200);
        let ac = ac_analysis(&nl, "vin", &freqs).unwrap();
        let fc = ac.corner_frequency("out").unwrap().expect("corner exists");
        assert!((fc / 159.15e6 - 1.0).abs() < 0.05, "corner = {fc:.3e} Hz");
        // DC gain is unity, high-frequency response rolls off.
        let mag = ac.magnitude("out").unwrap();
        assert!((mag[0] - 1.0).abs() < 1e-3);
        assert!(*mag.last().unwrap() < 0.05);
        // Phase goes from ~0 to ~-90 degrees.
        let ph = ac.phase("out").unwrap();
        assert!(ph[0].abs() < 0.1);
        assert!((ph.last().unwrap() + std::f64::consts::FRAC_PI_2).abs() < 0.1);
    }

    #[test]
    fn rc_highpass_blocks_dc() {
        let mut nl = Netlist::new();
        nl.add_vsource("vin", "in", "0", Waveform::dc(0.0)).unwrap();
        nl.add_capacitor("c1", "in", "out", 1e-12).unwrap();
        nl.add_resistor("r1", "out", "0", 1e3).unwrap();
        let freqs = log_sweep(1e6, 100e9, 120);
        let ac = ac_analysis(&nl, "vin", &freqs).unwrap();
        let mag = ac.magnitude("out").unwrap();
        assert!(mag[0] < 0.05, "low-frequency leak: {}", mag[0]);
        assert!((mag.last().unwrap() - 1.0).abs() < 0.01);
    }

    #[test]
    fn resistive_divider_is_flat() {
        let mut nl = Netlist::new();
        nl.add_vsource("vin", "in", "0", Waveform::dc(0.0)).unwrap();
        nl.add_resistor("r1", "in", "out", 1e3).unwrap();
        nl.add_resistor("r2", "out", "0", 1e3).unwrap();
        let ac = ac_analysis(&nl, "vin", &log_sweep(1e3, 1e12, 40)).unwrap();
        for m in ac.magnitude("out").unwrap() {
            assert!((m - 0.5).abs() < 1e-6);
        }
        assert!(ac.corner_frequency("out").unwrap().is_none());
    }

    #[test]
    fn common_source_amplifier_gain_and_inversion() {
        // NMOS with drain resistor: |H| ~ gm*(RL || ro), 180 deg phase.
        let mut nl = Netlist::new();
        nl.add_vsource("vdd", "vdd", "0", Waveform::dc(1.0))
            .unwrap();
        nl.add_vsource("vin", "in", "0", Waveform::dc(0.7)).unwrap();
        nl.add_resistor("rl", "vdd", "out", 10e3).unwrap();
        let model = MosModel::generic_nmos();
        let geom = MosGeometry {
            width: 1e-6,
            length: 100e-9,
        };
        nl.add_mosfet("m1", "out", "in", "0", model, geom).unwrap();
        let ac = ac_analysis(&nl, "vin", &[1e6]).unwrap();
        let h = ac.transfer("out").unwrap()[0];
        // Expected small-signal gain from the DC operating point.
        let dc = dc_operating_point(&nl).unwrap();
        let op = model.evaluate(&geom, 0.7, dc.node_voltage("out").unwrap());
        let expected = op.gm * (1.0 / (1.0 / 10e3 + op.gds));
        assert!(
            (h.abs() / expected - 1.0).abs() < 0.05,
            "gain {} vs expected {expected}",
            h.abs()
        );
        // Inverting stage.
        assert!((h.arg().abs() - std::f64::consts::PI).abs() < 0.05);
    }

    #[test]
    fn mtj_behaves_as_its_state_resistance() {
        use mss_mtj::resistance::MtjState;
        use mss_mtj::MssStack;
        let stack = MssStack::builder().build().unwrap();
        let mut nl = Netlist::new();
        nl.add_vsource("vin", "in", "0", Waveform::dc(0.0)).unwrap();
        nl.add_resistor("r1", "in", "out", stack.resistance_parallel())
            .unwrap();
        nl.add_mtj("x1", "out", "0", &stack, MtjState::Parallel)
            .unwrap();
        let ac = ac_analysis(&nl, "vin", &[1e6]).unwrap();
        let m = ac.magnitude("out").unwrap()[0];
        // Equal-resistance divider: exactly one half.
        assert!((m - 0.5).abs() < 1e-6, "divider = {m}");
    }

    #[test]
    fn unknown_source_is_rejected() {
        let nl = rc_lowpass();
        assert!(matches!(
            ac_analysis(&nl, "nope", &[1e6]),
            Err(SpiceError::UnknownNode(_))
        ));
    }

    #[test]
    fn log_sweep_endpoints_and_monotonicity() {
        let f = log_sweep(1e3, 1e9, 61);
        assert!((f[0] - 1e3).abs() < 1e-9);
        assert!((f[60] - 1e9).abs() < 1e-3);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "bad sweep spec")]
    fn bad_sweep_panics() {
        let _ = log_sweep(1e9, 1e3, 10);
    }
}
