//! SPICE-like text-deck parser.
//!
//! Accepted grammar (case-insensitive, one statement per line, `*`/`;`
//! comments):
//!
//! ```text
//! Rname n1 n2 <value>
//! Cname n1 n2 <value>
//! Vname n+ n- DC <v> | PULSE(v1 v2 delay rise fall width period) | SIN(off ampl freq [phase]) | PWL(t1 v1 t2 v2 ...)
//! Iname n+ n- <same source syntax>
//! Mname d g s [b] NMOS|PMOS W=<v> L=<v>
//! Xname n+ n- MTJ [STATE=P|AP] [DIAMETER=<v>]
//! Xname read shared write MTJSOT [STATE=P|AP] [DIAMETER=<v>] [THETA_SH=<v>] [T_CH=<v>] [RHO_CH=<v>]
//! Xname n1 n2 ... <subckt-name>
//! .subckt <name> <port1> <port2> ...
//!   <element lines>
//! .ends
//! .model NMOS|PMOS VTH=<v> KP=<v> LAMBDA=<v>
//! .tran <dt> <tstop>
//! .meas <name> DELAY TRIG v(x) VAL=<v> RISE|FALL TARG v(y) VAL=<v> RISE|FALL
//! .meas <name> ENERGY SRC=<vsrc> FROM=<t> TO=<t>
//! .meas <name> AVG|MIN|MAX|RMS v(x)|i(vsrc) FROM=<t> TO=<t>
//! .meas <name> FINAL v(x)|i(vsrc)
//! .end
//! ```
//!
//! Values take SPICE engineering suffixes (`f p n u m k meg g t`).
//! Subcircuits expand structurally: internal nodes and element names are
//! prefixed with the instance path (`x1.mid`), ports map positionally, and
//! `0`/`gnd` stay global. One level of nesting inside a `.subckt` body is
//! allowed per instantiation step up to a depth of 8 (cycles are rejected).

use std::collections::HashMap;

use mss_mtj::mechanism::SotParams;
use mss_mtj::resistance::MtjState;
use mss_mtj::MssStack;

use crate::mdl::{Edge, Measurement, Probe};
use crate::mosfet::{MosGeometry, MosModel, MosPolarity};
use crate::netlist::Netlist;
use crate::waveform::Waveform;
use crate::SpiceError;

/// A parsed deck: netlist plus analysis and measurement directives.
#[derive(Debug, Clone)]
pub struct Deck {
    /// The circuit.
    pub netlist: Netlist,
    /// `.tran dt tstop` if present.
    pub tran: Option<(f64, f64)>,
    /// `.meas` directives in order.
    pub measurements: Vec<Measurement>,
}

impl Deck {
    /// Parses a deck from text.
    ///
    /// # Errors
    ///
    /// [`SpiceError::Parse`] with a line number on any malformed statement.
    pub fn parse(text: &str) -> Result<Self, SpiceError> {
        Parser::new(text).parse()
    }
}

/// Parses a SPICE number with engineering suffix, e.g. `1k`, `10f`, `0.5n`,
/// `3meg`. Returns `None` for malformed numbers (the deck parser attaches
/// line context).
pub fn parse_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    if t.is_empty() {
        return None;
    }
    // Find the numeric prefix.
    let mut split = t.len();
    for (i, c) in t.char_indices() {
        if !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e') {
            split = i;
            break;
        }
        // 'e' only counts as part of the number when followed by digit/sign.
        if c == 'e' {
            let rest = &t[i + 1..];
            let ok = rest
                .chars()
                .next()
                .map(|n| n.is_ascii_digit() || n == '-' || n == '+')
                .unwrap_or(false);
            if !ok {
                split = i;
                break;
            }
        }
    }
    let (num, suffix) = t.split_at(split);
    let base: f64 = num.parse().ok()?;
    let mult = match suffix {
        "" | "v" | "s" | "a" | "hz" | "ohm" | "f64" => 1.0,
        "t" => 1e12,
        "g" => 1e9,
        "meg" => 1e6,
        "k" => 1e3,
        "m" => 1e-3,
        "u" => 1e-6,
        "n" => 1e-9,
        "p" => 1e-12,
        "f" => 1e-15,
        _ => {
            // Allow unit-bearing suffixes like "ns", "pf", "ua", "kohm".
            let (first, rest) = suffix.split_at(1);
            let m = match first {
                "t" => 1e12,
                "g" => 1e9,
                "k" => 1e3,
                "m" => 1e-3,
                "u" => 1e-6,
                "n" => 1e-9,
                "p" => 1e-12,
                "f" => 1e-15,
                _ => return None,
            };
            if rest.chars().all(|c| c.is_ascii_alphabetic()) {
                m
            } else {
                return None;
            }
        }
    };
    Some(base * mult)
}

/// A collected subcircuit definition.
#[derive(Debug, Clone)]
struct Subckt {
    ports: Vec<String>,
    /// `(source line number, text)` of each body statement.
    body: Vec<(usize, String)>,
}

/// Node/element renaming context for subcircuit expansion.
#[derive(Debug, Clone, Default)]
struct Scope {
    /// Instance path prefix, e.g. `"x1."` (empty at top level).
    prefix: String,
    /// Formal-port → actual-node mapping.
    ports: HashMap<String, String>,
}

impl Scope {
    fn node(&self, name: &str) -> String {
        let key = name.to_ascii_lowercase();
        if key == "0" || key == "gnd" {
            return "0".to_string();
        }
        if let Some(actual) = self.ports.get(&key) {
            return actual.clone();
        }
        format!("{}{}", self.prefix, key)
    }

    fn name(&self, name: &str) -> String {
        format!("{}{}", self.prefix, name)
    }
}

const MAX_SUBCKT_DEPTH: usize = 8;

struct Parser<'a> {
    text: &'a str,
    nmos: MosModel,
    pmos: MosModel,
    subckts: HashMap<String, Subckt>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            text,
            nmos: MosModel::generic_nmos(),
            pmos: MosModel::generic_pmos(),
            subckts: HashMap::new(),
        }
    }

    fn parse(mut self) -> Result<Deck, SpiceError> {
        let mut netlist = Netlist::new();
        let mut tran = None;
        let mut measurements = Vec::new();

        // First pass: collect .model cards and .subckt blocks.
        let mut in_subckt: Option<(String, Subckt)> = None;
        let mut subckt_lines = vec![false; self.text.lines().count()];
        for (lineno0, raw) in self.text.lines().enumerate() {
            let lineno = lineno0 + 1;
            let line = strip_comment(raw);
            if line.is_empty() {
                continue;
            }
            let lower = line.to_ascii_lowercase();
            if lower.starts_with(".model") {
                self.parse_model(lineno, &line)?;
            } else if lower.starts_with(".subckt") {
                if in_subckt.is_some() {
                    return err(lineno, "nested .subckt definitions are not allowed");
                }
                let tokens: Vec<&str> = line.split_whitespace().collect();
                if tokens.len() < 3 {
                    return err(lineno, ".subckt needs a name and at least one port");
                }
                let name = tokens[1].to_ascii_lowercase();
                if self.subckts.contains_key(&name) {
                    return err(lineno, &format!("duplicate subcircuit '{name}'"));
                }
                in_subckt = Some((
                    name,
                    Subckt {
                        ports: tokens[2..].iter().map(|t| t.to_ascii_lowercase()).collect(),
                        body: Vec::new(),
                    },
                ));
                subckt_lines[lineno0] = true;
            } else if lower.starts_with(".ends") {
                match in_subckt.take() {
                    Some((name, def)) => {
                        self.subckts.insert(name, def);
                        subckt_lines[lineno0] = true;
                    }
                    None => return err(lineno, ".ends without .subckt"),
                }
            } else if let Some((_, def)) = in_subckt.as_mut() {
                def.body.push((lineno, line));
                subckt_lines[lineno0] = true;
            }
        }
        if let Some((name, _)) = in_subckt {
            return err(
                self.text.lines().count(),
                &format!("unterminated .subckt '{name}'"),
            );
        }

        // Main pass.
        let top = Scope::default();
        for (lineno0, raw) in self.text.lines().enumerate() {
            let lineno = lineno0 + 1;
            if subckt_lines[lineno0] {
                continue;
            }
            let line = strip_comment(raw);
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let first = tokens[0].to_ascii_lowercase();
            if first.starts_with(".model") {
                continue; // handled in the first pass
            } else if first == ".end" {
                break;
            } else if first == ".tran" {
                if tokens.len() < 3 {
                    return err(lineno, ".tran needs <dt> <tstop>");
                }
                let dt = value(lineno, tokens[1])?;
                let stop = value(lineno, tokens[2])?;
                tran = Some((dt, stop));
            } else if first == ".meas" || first == ".measure" {
                measurements.push(parse_measurement(lineno, &tokens)?);
            } else {
                self.element_statement(&mut netlist, lineno, &line, &top, 0)?;
            }
        }

        Ok(Deck {
            netlist,
            tran,
            measurements,
        })
    }

    /// Parses one element statement into the netlist, applying `scope`
    /// renaming; recurses for subcircuit instantiations.
    fn element_statement(
        &self,
        netlist: &mut Netlist,
        lineno: usize,
        line: &str,
        scope: &Scope,
        depth: usize,
    ) -> Result<(), SpiceError> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() {
            return Ok(());
        }
        let first = tokens[0].to_ascii_lowercase();
        match first.chars().next().unwrap() {
            'r' => {
                if tokens.len() != 4 {
                    return err(lineno, "resistor: Rname n1 n2 value");
                }
                netlist
                    .add_resistor(
                        &scope.name(tokens[0]),
                        &scope.node(tokens[1]),
                        &scope.node(tokens[2]),
                        value(lineno, tokens[3])?,
                    )
                    .map_err(|e| wrap(lineno, e))?;
            }
            'c' => {
                if tokens.len() != 4 {
                    return err(lineno, "capacitor: Cname n1 n2 value");
                }
                netlist
                    .add_capacitor(
                        &scope.name(tokens[0]),
                        &scope.node(tokens[1]),
                        &scope.node(tokens[2]),
                        value(lineno, tokens[3])?,
                    )
                    .map_err(|e| wrap(lineno, e))?;
            }
            'v' | 'i' => {
                if tokens.len() < 4 {
                    return err(lineno, "source: Xname n+ n- <waveform>");
                }
                let wave = parse_waveform(lineno, line, &tokens)?;
                if first.starts_with('v') {
                    netlist
                        .add_vsource(
                            &scope.name(tokens[0]),
                            &scope.node(tokens[1]),
                            &scope.node(tokens[2]),
                            wave,
                        )
                        .map_err(|e| wrap(lineno, e))?;
                } else {
                    netlist
                        .add_isource(
                            &scope.name(tokens[0]),
                            &scope.node(tokens[1]),
                            &scope.node(tokens[2]),
                            wave,
                        )
                        .map_err(|e| wrap(lineno, e))?;
                }
            }
            'm' => {
                // Mname d g s [b] MODEL W=.. L=..
                if tokens.len() < 5 {
                    return err(lineno, "mosfet: Mname d g s [b] NMOS|PMOS W= L=");
                }
                let model_pos = tokens
                    .iter()
                    .position(|t| {
                        let u = t.to_ascii_lowercase();
                        u == "nmos" || u == "pmos"
                    })
                    .ok_or_else(|| parse_err(lineno, "missing NMOS/PMOS model"))?;
                if model_pos < 4 {
                    return err(lineno, "mosfet needs d g s terminals before the model");
                }
                let model = if tokens[model_pos].eq_ignore_ascii_case("nmos") {
                    self.nmos
                } else {
                    self.pmos
                };
                let mut w = None;
                let mut l = None;
                for t in &tokens[model_pos + 1..] {
                    let (k, v) = t
                        .split_once('=')
                        .ok_or_else(|| parse_err(lineno, "mosfet parameters must be K=V"))?;
                    match k.to_ascii_lowercase().as_str() {
                        "w" => w = Some(value(lineno, v)?),
                        "l" => l = Some(value(lineno, v)?),
                        other => return err(lineno, &format!("unknown mosfet param '{other}'")),
                    }
                }
                let geom = MosGeometry {
                    width: w.ok_or_else(|| parse_err(lineno, "missing W="))?,
                    length: l.ok_or_else(|| parse_err(lineno, "missing L="))?,
                };
                netlist
                    .add_mosfet(
                        &scope.name(tokens[0]),
                        &scope.node(tokens[1]),
                        &scope.node(tokens[2]),
                        &scope.node(tokens[3]),
                        model,
                        geom,
                    )
                    .map_err(|e| wrap(lineno, e))?;
            }
            'x' => {
                if tokens.len() >= 4 && tokens[3].eq_ignore_ascii_case("mtj") {
                    // Builtin MTJ: Xname n+ n- MTJ [params].
                    self.mtj_statement(netlist, lineno, &tokens, scope)?;
                } else if tokens.len() >= 5 && tokens[4].eq_ignore_ascii_case("mtjsot") {
                    // Builtin three-terminal SOT cell:
                    // Xname read shared write MTJSOT [params].
                    self.mtj_sot_statement(netlist, lineno, &tokens, scope)?;
                } else {
                    // Subcircuit instantiation: Xname n1 n2 ... subname.
                    if tokens.len() < 3 {
                        return err(lineno, "subckt call: Xname <nodes...> <name>");
                    }
                    let sub_name = tokens[tokens.len() - 1].to_ascii_lowercase();
                    let Some(def) = self.subckts.get(&sub_name) else {
                        return err(
                            lineno,
                            &format!("unknown subcircuit or element '{sub_name}'"),
                        );
                    };
                    let actuals = &tokens[1..tokens.len() - 1];
                    if actuals.len() != def.ports.len() {
                        return err(
                            lineno,
                            &format!(
                                "subcircuit '{sub_name}' has {} ports but {} nodes were given",
                                def.ports.len(),
                                actuals.len()
                            ),
                        );
                    }
                    if depth >= MAX_SUBCKT_DEPTH {
                        return err(lineno, "subcircuit nesting too deep (cycle?)");
                    }
                    let mut inner = Scope {
                        prefix: format!("{}{}.", scope.prefix, tokens[0].to_ascii_lowercase()),
                        ports: HashMap::new(),
                    };
                    for (formal, actual) in def.ports.iter().zip(actuals) {
                        inner.ports.insert(formal.clone(), scope.node(actual));
                    }
                    for (body_lineno, body_line) in &def.body {
                        self.element_statement(
                            netlist,
                            *body_lineno,
                            body_line,
                            &inner,
                            depth + 1,
                        )?;
                    }
                }
            }
            _ => {
                return err(lineno, &format!("unrecognised statement '{}'", tokens[0]));
            }
        }
        Ok(())
    }

    fn mtj_statement(
        &self,
        netlist: &mut Netlist,
        lineno: usize,
        tokens: &[&str],
        scope: &Scope,
    ) -> Result<(), SpiceError> {
        let mut state = MtjState::Parallel;
        let mut builder = MssStack::builder();
        for t in &tokens[4..] {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| parse_err(lineno, "MTJ parameters must be K=V"))?;
            match k.to_ascii_lowercase().as_str() {
                "state" => {
                    state = match v.to_ascii_lowercase().as_str() {
                        "p" | "parallel" => MtjState::Parallel,
                        "ap" | "antiparallel" => MtjState::Antiparallel,
                        other => return err(lineno, &format!("unknown MTJ state '{other}'")),
                    }
                }
                "diameter" => {
                    builder = builder.diameter(value(lineno, v)?);
                }
                "tmr" => {
                    builder = builder.tmr_zero_bias(value(lineno, v)?);
                }
                "ra" => {
                    builder = builder.resistance_area_product(value(lineno, v)?);
                }
                other => return err(lineno, &format!("unknown MTJ param '{other}'")),
            }
        }
        let stack = builder
            .build()
            .map_err(|e| parse_err(lineno, &format!("bad MTJ: {e}")))?;
        netlist
            .add_mtj(
                &scope.name(tokens[0]),
                &scope.node(tokens[1]),
                &scope.node(tokens[2]),
                &stack,
                state,
            )
            .map_err(|e| wrap(lineno, e))?;
        Ok(())
    }

    fn mtj_sot_statement(
        &self,
        netlist: &mut Netlist,
        lineno: usize,
        tokens: &[&str],
        scope: &Scope,
    ) -> Result<(), SpiceError> {
        let mut state = MtjState::Parallel;
        let mut builder = MssStack::builder();
        let mut params = SotParams::default();
        for t in &tokens[5..] {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| parse_err(lineno, "MTJSOT parameters must be K=V"))?;
            match k.to_ascii_lowercase().as_str() {
                "state" => {
                    state = match v.to_ascii_lowercase().as_str() {
                        "p" | "parallel" => MtjState::Parallel,
                        "ap" | "antiparallel" => MtjState::Antiparallel,
                        other => return err(lineno, &format!("unknown MTJSOT state '{other}'")),
                    }
                }
                "diameter" => {
                    builder = builder.diameter(value(lineno, v)?);
                }
                "tmr" => {
                    builder = builder.tmr_zero_bias(value(lineno, v)?);
                }
                "ra" => {
                    builder = builder.resistance_area_product(value(lineno, v)?);
                }
                "theta_sh" => {
                    params.spin_hall_angle = value(lineno, v)?;
                }
                "t_ch" => {
                    params.channel_thickness = value(lineno, v)?;
                }
                "rho_ch" => {
                    params.channel_resistivity = value(lineno, v)?;
                }
                other => return err(lineno, &format!("unknown MTJSOT param '{other}'")),
            }
        }
        let stack = builder
            .build()
            .map_err(|e| parse_err(lineno, &format!("bad MTJSOT: {e}")))?;
        netlist
            .add_mtj_sot(
                &scope.name(tokens[0]),
                &scope.node(tokens[1]),
                &scope.node(tokens[2]),
                &scope.node(tokens[3]),
                &stack,
                &params,
                state,
            )
            .map_err(|e| wrap(lineno, e))?;
        Ok(())
    }

    fn parse_model(&mut self, lineno: usize, line: &str) -> Result<(), SpiceError> {
        // .model NMOS VTH=0.4 KP=200u LAMBDA=0.05
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 2 {
            return err(lineno, ".model needs a name");
        }
        let which = tokens[1].to_ascii_lowercase();
        let target = match which.as_str() {
            "nmos" => &mut self.nmos,
            "pmos" => &mut self.pmos,
            other => return err(lineno, &format!("unknown model '{other}'")),
        };
        target.polarity = if which == "nmos" {
            MosPolarity::Nmos
        } else {
            MosPolarity::Pmos
        };
        for t in &tokens[2..] {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| parse_err(lineno, "model parameters must be K=V"))?;
            let v = value(lineno, v)?;
            match k.to_ascii_lowercase().as_str() {
                "vth" => target.vth = v,
                "kp" => target.kp = v,
                "lambda" => target.lambda = v,
                "level" => {} // only level 1 exists; accepted and ignored
                other => return err(lineno, &format!("unknown model param '{other}'")),
            }
        }
        Ok(())
    }
}

fn strip_comment(line: &str) -> String {
    let line = line.trim();
    if line.starts_with('*') {
        return String::new();
    }
    match line.find(';') {
        Some(i) => line[..i].trim().to_string(),
        None => line.to_string(),
    }
}

fn err<T>(line: usize, message: &str) -> Result<T, SpiceError> {
    Err(parse_err(line, message))
}

fn parse_err(line: usize, message: &str) -> SpiceError {
    SpiceError::Parse {
        line,
        message: message.to_string(),
    }
}

fn wrap(line: usize, e: SpiceError) -> SpiceError {
    parse_err(line, &e.to_string())
}

fn value(line: usize, token: &str) -> Result<f64, SpiceError> {
    parse_value(token).ok_or_else(|| parse_err(line, &format!("bad value '{token}'")))
}

/// Parses the source-value portion of a V/I line.
fn parse_waveform(lineno: usize, line: &str, tokens: &[&str]) -> Result<Waveform, SpiceError> {
    let rest = tokens[3..].join(" ");
    let upper = rest.to_ascii_uppercase();
    if let Some(args) = paren_args(&rest, "pulse") {
        let v = parse_args(lineno, &args)?;
        if v.len() < 7 {
            return err(lineno, "PULSE needs 7 arguments");
        }
        Ok(Waveform::pulse(v[0], v[1], v[2], v[3], v[4], v[5], v[6]))
    } else if let Some(args) = paren_args(&rest, "sin") {
        let v = parse_args(lineno, &args)?;
        if v.len() < 3 {
            return err(lineno, "SIN needs at least 3 arguments");
        }
        Ok(Waveform::sin(
            v[0],
            v[1],
            v[2],
            v.get(3).copied().unwrap_or(0.0),
        ))
    } else if let Some(args) = paren_args(&rest, "pwl") {
        let v = parse_args(lineno, &args)?;
        if v.len() % 2 != 0 || v.is_empty() {
            return err(lineno, "PWL needs an even number of arguments");
        }
        Ok(Waveform::pwl(v.chunks(2).map(|c| (c[0], c[1])).collect()))
    } else if upper.starts_with("DC") {
        let tok = rest
            .split_whitespace()
            .nth(1)
            .ok_or_else(|| parse_err(lineno, "DC needs a value"))?;
        Ok(Waveform::dc(value(lineno, tok)?))
    } else if tokens.len() == 4 {
        // Bare value = DC.
        Ok(Waveform::dc(value(lineno, tokens[3])?))
    } else {
        err(lineno, &format!("unrecognised source spec '{line}'"))
    }
}

/// Extracts `name( ... )` argument text, case-insensitively.
fn paren_args(text: &str, name: &str) -> Option<String> {
    let lower = text.to_ascii_lowercase();
    let start = lower.find(&format!("{name}("))?;
    let open = start + name.len();
    let close = lower[open..].find(')')? + open;
    Some(text[open + 1..close].to_string())
}

fn parse_args(lineno: usize, args: &str) -> Result<Vec<f64>, SpiceError> {
    args.split(|c: char| c.is_whitespace() || c == ',')
        .filter(|s| !s.is_empty())
        .map(|s| value(lineno, s))
        .collect()
}

fn parse_probe(lineno: usize, token: &str) -> Result<Probe, SpiceError> {
    let t = token.trim();
    let lower = t.to_ascii_lowercase();
    if lower.starts_with("v(") && lower.ends_with(')') {
        Ok(Probe::NodeVoltage(t[2..t.len() - 1].to_string()))
    } else if lower.starts_with("i(") && lower.ends_with(')') {
        Ok(Probe::SourceCurrent(t[2..t.len() - 1].to_string()))
    } else {
        err(
            lineno,
            &format!("bad probe '{token}', expected v(x) or i(x)"),
        )
    }
}

fn parse_edge(token: &str) -> Option<Edge> {
    match token.to_ascii_lowercase().as_str() {
        "rise" => Some(Edge::Rise),
        "fall" => Some(Edge::Fall),
        "either" | "cross" => Some(Edge::Either),
        _ => None,
    }
}

fn kv(token: &str) -> Option<(String, &str)> {
    token
        .split_once('=')
        .map(|(k, v)| (k.to_ascii_lowercase(), v))
}

fn parse_measurement(lineno: usize, tokens: &[&str]) -> Result<Measurement, SpiceError> {
    // tokens[0] = .meas, [1] = name, [2] = kind, rest = spec
    if tokens.len() < 3 {
        return err(lineno, ".meas needs a name and a kind");
    }
    let name = tokens[1].to_string();
    let kind = tokens[2].to_ascii_lowercase();
    let rest = &tokens[3..];
    match kind.as_str() {
        "delay" => {
            // TRIG v(x) VAL=0.5 RISE TARG v(y) VAL=0.5 RISE
            let mut trig = None;
            let mut targ = None;
            let mut trig_value = None;
            let mut targ_value = None;
            let mut trig_edge = Edge::Either;
            let mut targ_edge = Edge::Either;
            let mut section = 0; // 1 after TRIG, 2 after TARG
            for t in rest {
                let lower = t.to_ascii_lowercase();
                if lower == "trig" {
                    section = 1;
                } else if lower == "targ" {
                    section = 2;
                } else if let Some((k, v)) = kv(t) {
                    if k == "val" {
                        let v = value(lineno, v)?;
                        if section == 1 {
                            trig_value = Some(v);
                        } else {
                            targ_value = Some(v);
                        }
                    }
                } else if let Some(e) = parse_edge(t) {
                    if section == 1 {
                        trig_edge = e;
                    } else {
                        targ_edge = e;
                    }
                } else if lower.starts_with("v(") || lower.starts_with("i(") {
                    let p = parse_probe(lineno, t)?;
                    if section == 1 {
                        trig = Some(p);
                    } else {
                        targ = Some(p);
                    }
                }
            }
            Ok(Measurement::Delay {
                name,
                trig: trig.ok_or_else(|| parse_err(lineno, "DELAY missing TRIG probe"))?,
                trig_value: trig_value
                    .ok_or_else(|| parse_err(lineno, "DELAY missing TRIG VAL"))?,
                trig_edge,
                targ: targ.ok_or_else(|| parse_err(lineno, "DELAY missing TARG probe"))?,
                targ_value: targ_value
                    .ok_or_else(|| parse_err(lineno, "DELAY missing TARG VAL"))?,
                targ_edge,
            })
        }
        "energy" => {
            let mut source = None;
            let mut from = 0.0;
            let mut to = f64::INFINITY;
            for t in rest {
                if let Some((k, v)) = kv(t) {
                    match k.as_str() {
                        "src" => source = Some(v.to_string()),
                        "from" => from = value(lineno, v)?,
                        "to" => to = value(lineno, v)?,
                        _ => return err(lineno, &format!("unknown ENERGY param '{k}'")),
                    }
                }
            }
            Ok(Measurement::Energy {
                name,
                source: source.ok_or_else(|| parse_err(lineno, "ENERGY missing SRC="))?,
                from,
                to,
            })
        }
        "avg" | "min" | "max" | "rms" => {
            let mut probe = None;
            let mut from = 0.0;
            let mut to = f64::INFINITY;
            for t in rest {
                if let Some((k, v)) = kv(t) {
                    match k.as_str() {
                        "from" => from = value(lineno, v)?,
                        "to" => to = value(lineno, v)?,
                        _ => return err(lineno, &format!("unknown param '{k}'")),
                    }
                } else {
                    probe = Some(parse_probe(lineno, t)?);
                }
            }
            let probe = probe.ok_or_else(|| parse_err(lineno, "missing probe"))?;
            Ok(match kind.as_str() {
                "avg" => Measurement::Average {
                    name,
                    probe,
                    from,
                    to,
                },
                "min" => Measurement::Minimum {
                    name,
                    probe,
                    from,
                    to,
                },
                "max" => Measurement::Maximum {
                    name,
                    probe,
                    from,
                    to,
                },
                _ => Measurement::Rms {
                    name,
                    probe,
                    from,
                    to,
                },
            })
        }
        "final" => {
            let probe = rest
                .first()
                .ok_or_else(|| parse_err(lineno, "FINAL missing probe"))
                .and_then(|t| parse_probe(lineno, t))?;
            Ok(Measurement::FinalValue { name, probe })
        }
        other => err(lineno, &format!("unknown measurement kind '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{dc_operating_point, Transient, TransientOptions};

    #[test]
    fn parse_value_suffixes() {
        fn close(tok: &str, expect: f64) {
            let v = parse_value(tok).unwrap_or_else(|| panic!("'{tok}' failed to parse"));
            assert!(
                (v - expect).abs() <= 1e-12 * expect.abs(),
                "'{tok}': {v} != {expect}"
            );
        }
        close("1k", 1e3);
        close("10f", 10e-15);
        close("0.5n", 0.5e-9);
        close("3meg", 3e6);
        close("2.5", 2.5);
        close("1e-9", 1e-9);
        close("100m", 0.1);
        close("1ns", 1e-9);
        close("10pf", 10e-12);
        assert_eq!(parse_value("garbage"), None);
        assert_eq!(parse_value(""), None);
    }

    #[test]
    fn parses_rc_deck_and_runs() {
        let deck = Deck::parse(
            "* RC step\n\
             VIN in 0 PULSE(0 1 1n 10p 10p 1 0)\n\
             R1 in out 1k\n\
             C1 out 0 1p\n\
             .tran 1p 8n\n\
             .meas tpd DELAY TRIG v(in) VAL=0.5 RISE TARG v(out) VAL=0.5 RISE\n\
             .end\n",
        )
        .unwrap();
        let (dt, stop) = deck.tran.unwrap();
        let res = Transient::new(&deck.netlist)
            .unwrap()
            .run(&TransientOptions::new(dt, stop))
            .unwrap();
        assert_eq!(deck.measurements.len(), 1);
        let d = deck.measurements[0].evaluate(&res).unwrap();
        assert!((d - 0.693e-9).abs() < 0.03e-9, "delay = {d}");
    }

    #[test]
    fn parses_mosfet_with_model_card() {
        let deck = Deck::parse(
            ".model NMOS VTH=0.35 KP=250u LAMBDA=0.04\n\
             VDD vdd 0 DC 1.0\n\
             VIN in 0 DC 1.0\n\
             RL vdd out 10k\n\
             M1 out in 0 0 NMOS W=1u L=100n\n\
             .end\n",
        )
        .unwrap();
        let dc = dc_operating_point(&deck.netlist).unwrap();
        assert!(dc.node_voltage("out").unwrap() < 0.2);
    }

    #[test]
    fn parses_mtj_line() {
        let deck = Deck::parse(
            "VW top 0 DC 0.1\n\
             X1 top 0 MTJ STATE=AP DIAMETER=40n\n\
             .tran 10p 1n\n",
        )
        .unwrap();
        assert_eq!(deck.netlist.elements().len(), 2);
    }

    #[test]
    fn parses_energy_and_stat_measures() {
        let deck = Deck::parse(
            "VDD vdd 0 DC 1\n\
             R1 vdd 0 1k\n\
             .tran 1p 1n\n\
             .meas e ENERGY SRC=VDD FROM=0 TO=1n\n\
             .meas vmax MAX v(vdd) FROM=0 TO=1n\n\
             .meas iavg AVG i(VDD) FROM=0 TO=1n\n\
             .meas vf FINAL v(vdd)\n",
        )
        .unwrap();
        assert_eq!(deck.measurements.len(), 4);
        let res = Transient::new(&deck.netlist)
            .unwrap()
            .run(&TransientOptions::new(1e-12, 1e-9))
            .unwrap();
        let e = deck.measurements[0].evaluate(&res).unwrap();
        // P = V^2/R = 1 mW over 1 ns = 1 pJ.
        assert!((e - 1e-12).abs() < 0.05e-12, "e = {e}");
        assert_eq!(deck.measurements[1].evaluate(&res).unwrap(), 1.0);
        let iavg = deck.measurements[2].evaluate(&res).unwrap();
        assert!((iavg + 1e-3).abs() < 1e-6); // MNA sign
        assert_eq!(deck.measurements[3].evaluate(&res).unwrap(), 1.0);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = Deck::parse("R1 a b 1k\nBOGUS x y z\n").unwrap_err();
        match e {
            SpiceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let deck = Deck::parse("* top comment\n\nR1 a 0 1k ; trailing comment\n").unwrap();
        assert_eq!(deck.netlist.elements().len(), 1);
    }

    #[test]
    fn pwl_and_sin_sources_parse() {
        let deck = Deck::parse(
            "V1 a 0 PWL(0 0 1n 1 2n 0)\n\
             V2 b 0 SIN(0 0.5 1g)\n\
             R1 a 0 1k\n\
             R2 b 0 1k\n",
        )
        .unwrap();
        assert_eq!(deck.netlist.vsource_count(), 2);
    }

    #[test]
    fn bad_mtj_params_error() {
        assert!(Deck::parse("X1 a 0 MTJ STATE=SIDEWAYS\n").is_err());
        assert!(Deck::parse("X1 a 0 MTJ DIAMETER=-4n\n").is_err());
        assert!(Deck::parse("X1 a 0 NOTMTJ\n").is_err());
    }

    #[test]
    fn parses_mtj_sot_line() {
        use crate::netlist::Element;
        let deck = Deck::parse(
            "VW sh 0 DC 0.3\n\
             X1 rd sh 0 MTJSOT STATE=AP DIAMETER=40n THETA_SH=0.25 T_CH=4n RHO_CH=2u\n\
             .tran 10p 1n\n",
        )
        .unwrap();
        assert_eq!(deck.netlist.elements().len(), 2);
        match &deck.netlist.elements()[1] {
            Element::MtjSot { channel_ohms, .. } => {
                assert!(channel_ohms.is_finite() && *channel_ohms > 0.0);
            }
            other => panic!("expected MtjSot, got {other:?}"),
        }
        // Three distinct terminals plus ground: rd, sh.
        assert_eq!(deck.netlist.node_count(), 3);
    }

    #[test]
    fn bad_mtj_sot_params_error() {
        assert!(Deck::parse("X1 a b c MTJSOT STATE=SIDEWAYS\n").is_err());
        assert!(Deck::parse("X1 a b c MTJSOT THETA_SH=0\n").is_err());
        assert!(Deck::parse("X1 a b c MTJSOT BOGUS=1\n").is_err());
    }

    // --- subcircuit tests ---

    const DIVIDER: &str = "\
.subckt divider top mid
RA top mid 1k
RB mid 0 1k
.ends
VIN in 0 DC 2
X1 in out divider
";

    #[test]
    fn subckt_expands_with_port_mapping() {
        let deck = Deck::parse(DIVIDER).unwrap();
        // Elements: VIN + expanded RA, RB with instance-prefixed names.
        assert_eq!(deck.netlist.elements().len(), 3);
        let names: Vec<&str> = deck.netlist.elements().iter().map(|e| e.name()).collect();
        assert!(names.contains(&"x1.RA"), "{names:?}");
        let dc = dc_operating_point(&deck.netlist).unwrap();
        assert!((dc.node_voltage("out").unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn subckt_internal_nodes_are_scoped() {
        // Two instances must not short their internal nodes together.
        let text = "\
.subckt stage a b
R1 a m 1k
R2 m b 1k
.ends
VIN in 0 DC 2
X1 in mid stage
X2 mid 0 stage
";
        let deck = Deck::parse(text).unwrap();
        let dc = dc_operating_point(&deck.netlist).unwrap();
        // Four equal resistors in series: mid = 1 V, x1's internal m = 1.5 V.
        assert!((dc.node_voltage("mid").unwrap() - 1.0).abs() < 1e-6);
        assert!((dc.node_voltage("x1.m").unwrap() - 1.5).abs() < 1e-6);
        assert!((dc.node_voltage("x2.m").unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn nested_subckt_instantiation() {
        let text = "\
.subckt leg top bot
R1 top bot 2k
.ends
.subckt pair a b
X1 a m leg
X2 m b leg
.ends
VIN in 0 DC 2
X9 in 0 pair
";
        let deck = Deck::parse(text).unwrap();
        let dc = dc_operating_point(&deck.netlist).unwrap();
        // 2k + 2k from 2 V: the midpoint sits at 1 V.
        assert!((dc.node_voltage("x9.m").unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn subckt_with_mtj_and_mosfet() {
        let text = "\
.subckt cell bl wl sl
M1 bl wl x 0 NMOS W=500n L=45n
XJ x sl MTJ STATE=AP
.ends
VBL bl 0 DC 1
VWL wl 0 DC 1
X1 bl wl 0 cell
.tran 10p 1n
";
        let deck = Deck::parse(text).unwrap();
        assert_eq!(deck.netlist.elements().len(), 4);
        let res = Transient::new(&deck.netlist)
            .unwrap()
            .run(&TransientOptions::new(1e-11, 1e-9))
            .unwrap();
        // The expanded MTJ keeps its prefixed name.
        assert!(res.mtj_state("x1.XJ").is_ok());
    }

    #[test]
    fn subckt_errors() {
        // Port count mismatch.
        let e = Deck::parse(".subckt s a b\nR1 a b 1k\n.ends\nX1 n1 s\n").unwrap_err();
        assert!(matches!(e, SpiceError::Parse { .. }), "{e}");
        // Unterminated definition.
        assert!(Deck::parse(".subckt s a b\nR1 a b 1k\n").is_err());
        // .ends without .subckt.
        assert!(Deck::parse(".ends\n").is_err());
        // Unknown subcircuit.
        assert!(Deck::parse("X1 a b nothere\n").is_err());
        // Recursion is cut off.
        let rec = ".subckt loop a b\nX1 a b loop\n.ends\nX1 n1 n2 loop\n";
        let e = Deck::parse(rec).unwrap_err();
        match e {
            SpiceError::Parse { message, .. } => {
                assert!(message.contains("nesting too deep"), "{message}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
