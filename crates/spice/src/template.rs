//! Netlist/stimulus/MDL template expansion.
//!
//! The characterisation flow (paper Sec. IV-A) keeps one template per cell
//! and instantiates it with technology- and sweep-specific parameters:
//! `{vdd}`, `{w_access}`, `{t_pulse}` and so on. Expansion is plain textual
//! substitution with strict unknown-placeholder detection, so a typo in a
//! template fails loudly instead of producing a silently wrong deck.

use std::collections::BTreeMap;

use crate::SpiceError;

/// A parameter binding set for template expansion.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bindings {
    values: BTreeMap<String, String>,
}

impl Bindings {
    /// Empty binding set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a string value.
    pub fn set(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.values.insert(key.to_string(), value.to_string());
        self
    }

    /// Binds a numeric value rendered with full precision.
    pub fn set_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.values.insert(key.to_string(), format!("{value:e}"));
        self
    }

    /// Looks up a binding.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }
}

/// Expands `{param}` placeholders in `template` using `bindings`.
///
/// Literal braces are written `{{` and `}}`.
///
/// # Errors
///
/// [`SpiceError::UnboundTemplateParameter`] when a placeholder has no
/// binding, and [`SpiceError::Parse`] on an unterminated `{`.
///
/// # Examples
///
/// ```
/// use mss_spice::template::{expand, Bindings};
///
/// # fn main() -> Result<(), mss_spice::SpiceError> {
/// let mut b = Bindings::new();
/// b.set("vdd", "1.0").set_f64("cap", 1e-15);
/// let deck = expand("VDD vdd 0 DC {vdd}\nC1 out 0 {cap}", &b)?;
/// assert!(deck.contains("DC 1.0"));
/// assert!(deck.contains("1e-15"));
/// # Ok(())
/// # }
/// ```
pub fn expand(template: &str, bindings: &Bindings) -> Result<String, SpiceError> {
    let mut out = String::with_capacity(template.len());
    let mut chars = template.chars().peekable();
    let mut line = 1usize;
    while let Some(c) = chars.next() {
        match c {
            '\n' => {
                line += 1;
                out.push(c);
            }
            '{' => {
                if chars.peek() == Some(&'{') {
                    chars.next();
                    out.push('{');
                    continue;
                }
                let mut name = String::new();
                let mut closed = false;
                for c2 in chars.by_ref() {
                    if c2 == '}' {
                        closed = true;
                        break;
                    }
                    name.push(c2);
                }
                if !closed {
                    return Err(SpiceError::Parse {
                        line,
                        message: format!("unterminated placeholder '{{{name}'"),
                    });
                }
                match bindings.get(name.trim()) {
                    Some(v) => out.push_str(v),
                    None => {
                        return Err(SpiceError::UnboundTemplateParameter(
                            name.trim().to_string(),
                        ))
                    }
                }
            }
            '}' => {
                if chars.peek() == Some(&'}') {
                    chars.next();
                }
                out.push('}');
            }
            _ => out.push(c),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitutes_parameters() {
        let mut b = Bindings::new();
        b.set("r", "10k").set("node", "out");
        let s = expand("R1 in {node} {r}", &b).unwrap();
        assert_eq!(s, "R1 in out 10k");
    }

    #[test]
    fn unknown_parameter_errors() {
        let b = Bindings::new();
        let err = expand("R1 a b {mystery}", &b).unwrap_err();
        assert!(matches!(err, SpiceError::UnboundTemplateParameter(p) if p == "mystery"));
    }

    #[test]
    fn unterminated_placeholder_errors() {
        let b = Bindings::new();
        assert!(matches!(
            expand("bad {oops", &b),
            Err(SpiceError::Parse { .. })
        ));
    }

    #[test]
    fn escaped_braces_pass_through() {
        let b = Bindings::new();
        assert_eq!(expand("{{literal}}", &b).unwrap(), "{literal}");
    }

    #[test]
    fn numeric_binding_renders_scientific() {
        let mut b = Bindings::new();
        b.set_f64("c", 2.5e-15);
        assert_eq!(expand("{c}", &b).unwrap(), "2.5e-15");
    }

    #[test]
    fn whitespace_in_placeholder_is_trimmed() {
        let mut b = Bindings::new();
        b.set("x", "7");
        assert_eq!(expand("{ x }", &b).unwrap(), "7");
    }

    #[test]
    fn multiline_error_reports_line() {
        let b = Bindings::new();
        match expand("line one\nline two {bad", &b) {
            Err(SpiceError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
