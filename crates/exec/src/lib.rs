//! `mss-exec` — the deterministic parallel runtime of the GREAT MSS flow.
//!
//! Monte Carlo volume is the accuracy knob of every distribution the paper
//! reports (Table 1 μ/σ, the Fig. 7–9 error-rate curves), so sampling
//! throughput decides how far the variation corners can be swept. This crate
//! provides the fan-out machinery used by `mss-vaet`, `mss-mtj`, `mss-nvsim`,
//! `mss-gemsim` and `mss-core`:
//!
//! - [`par_map`] / [`par_chunks`] — scoped-thread work-stealing fan-out
//!   (`std::thread::scope`, zero dependencies, no work ever outlives the
//!   call),
//! - [`ParallelConfig`] — thread/chunk policy with an `MSS_THREADS`
//!   environment override,
//! - [`RunStats`] — per-run counters (tasks, samples, wall time, per-thread
//!   utilization) for throughput reporting.
//!
//! # Determinism contract
//!
//! Tasks are *indexed*, and anything random a task does must derive from
//! `(seed, task index)` — see [`task_rng`] and
//! [`mss_units::rng::Xoshiro256PlusPlus::stream`]. Results are returned (and
//! must be reduced) **in task order**, never in completion order. Under that
//! contract a fixed seed produces bit-identical output at any thread count;
//! threads only change *when* a task runs, never *what* it computes or the
//! order results are merged in.
//!
//! # Examples
//!
//! ```
//! use mss_exec::{par_map, ParallelConfig};
//!
//! let cfg = ParallelConfig::serial().with_threads(4);
//! let squares = par_map(&cfg, &[1u64, 2, 3, 4], |_idx, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![deny(missing_docs)]

pub mod supervise;

pub use supervise::{
    supervised_chunks, supervised_map, supervised_map_with, CancelToken, FailureKind, PartialSweep,
    SupervisorConfig, TaskCtx, TaskFailure,
};

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use mss_units::rng::Xoshiro256PlusPlus;

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "MSS_THREADS";

/// Default task granularity: samples per chunk in [`par_chunks`].
///
/// Fixed (never derived from the thread count) so that chunk boundaries —
/// and therefore RNG streams and merge grouping — are identical no matter
/// how many workers run.
pub const DEFAULT_CHUNK: usize = 256;

/// Thread/chunk policy for a parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads to spawn (1 = run inline on the caller).
    pub threads: usize,
    /// Task granularity for [`par_chunks`] (items per chunk).
    pub chunk: usize,
}

impl ParallelConfig {
    /// One thread, default chunking: always-valid serial baseline.
    pub const fn serial() -> Self {
        Self {
            threads: 1,
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Reads the policy from the environment: `MSS_THREADS` when set to a
    /// positive integer, otherwise the machine's available parallelism.
    ///
    /// A garbled override (`"eight"`, `"-2"`, `"0"`) is **not** silently
    /// ignored: it logs one warning to stderr (first occurrence only) and
    /// bumps the `exec.bad_threads_env` observability counter, then falls
    /// back to available parallelism — a misconfigured run stays runnable
    /// but diagnosable. An empty/whitespace value counts as unset.
    pub fn from_env() -> Self {
        let threads = match std::env::var(THREADS_ENV) {
            Ok(raw) if !raw.trim().is_empty() => match parse_threads(&raw) {
                Ok(n) => Some(n),
                Err(why) => {
                    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                    warn_ignored_env_once(
                        &WARN_ONCE,
                        "exec.bad_threads_env",
                        format!(
                            "warning: ignoring {THREADS_ENV}={raw:?} ({why}); \
                             using available parallelism"
                        ),
                    );
                    None
                }
            },
            _ => None,
        };
        let threads =
            threads.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Self {
            threads,
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Returns the policy with a different thread count (minimum 1).
    pub const fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { 1 } else { threads };
        self
    }

    /// Returns the policy with a different chunk size (minimum 1).
    ///
    /// Changing the chunk changes batch boundaries and therefore the exact
    /// floating-point merge grouping of chunked reductions; keep it fixed
    /// when comparing runs bit-for-bit.
    pub const fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = if chunk == 0 { 1 } else { chunk };
        self
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The shared "garbled env var" convention: bump `counter`, print `message`
/// to stderr exactly once per call site (via the caller's `Once`), and let
/// the caller fall back to its safe default. Used by `MSS_THREADS` here and
/// by `MSS_CACHE`/`MSS_CACHE_DIR` in `mss-pipe`, so every layer warns with
/// one voice and never panics on a misconfiguration.
pub fn warn_ignored_env_once(
    once: &'static std::sync::Once,
    counter: &'static str,
    message: String,
) {
    mss_obs::counter_add(counter, 1);
    once.call_once(|| {
        eprintln!("{message}");
    });
}

/// Parses an `MSS_THREADS`-style thread-count override.
///
/// Accepts a positive integer with surrounding whitespace; everything else
/// (words, negatives, zero, fractions) is an error describing why, so
/// callers can warn instead of silently ignoring a misconfiguration.
///
/// # Errors
///
/// A human-readable description of the rejected value.
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value".to_string());
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err("thread count must be positive, got 0".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("not a positive integer: {trimmed:?}")),
    }
}

/// Counters describing one parallel run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Number of tasks executed.
    pub tasks: u64,
    /// Number of leaf items (samples) the tasks covered.
    pub samples: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock duration of the whole region, seconds.
    pub wall_seconds: f64,
    /// Per-thread busy time (seconds spent inside task bodies).
    pub busy_seconds: Vec<f64>,
}

impl RunStats {
    /// Per-thread utilization: busy time / wall time, in `[0, 1]`-ish
    /// (slightly above 1 is possible from timer granularity).
    pub fn utilization(&self) -> Vec<f64> {
        if self.wall_seconds <= 0.0 {
            return vec![0.0; self.busy_seconds.len()];
        }
        self.busy_seconds
            .iter()
            .map(|b| b / self.wall_seconds)
            .collect()
    }

    /// Mean utilization across workers.
    pub fn mean_utilization(&self) -> f64 {
        let u = self.utilization();
        if u.is_empty() {
            0.0
        } else {
            u.iter().sum::<f64>() / u.len() as f64
        }
    }

    /// Sample throughput, samples per wall-clock second.
    pub fn samples_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.samples as f64 / self.wall_seconds
        }
    }

    /// Records this run into the global observability registry under
    /// `name` (see `mss_obs::record_run`): `{name}.tasks`/`{name}.samples`
    /// counters plus wall-time and utilization histograms. No-op when
    /// observability is disabled.
    pub fn record(&self, name: &str) {
        mss_obs::record_run(
            name,
            self.tasks,
            self.samples,
            self.wall_seconds,
            &self.busy_seconds,
        );
    }

    /// Renders a one-run report block.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "tasks {} | samples {} | threads {} | wall {:.3} ms | {:.0} samples/s\n",
            self.tasks,
            self.samples,
            self.threads,
            self.wall_seconds * 1e3,
            self.samples_per_second()
        );
        for (k, u) in self.utilization().iter().enumerate() {
            out.push_str(&format!("  worker {k}: {:5.1}% busy\n", u * 100.0));
        }
        out
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_table())
    }
}

/// The deterministic per-task RNG: stream `index` of `seed`.
///
/// Convenience re-wrap of [`Xoshiro256PlusPlus::stream`] so callers don't
/// need to depend on `mss-units` naming.
pub fn task_rng(seed: u64, index: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::stream(seed, index)
}

/// Core engine: runs `tasks` indexed closures over a shared work queue.
///
/// Results come back in task order. Panics in a task propagate to the
/// caller.
fn run_indexed<U, F>(cfg: &ParallelConfig, tasks: usize, samples: u64, f: F) -> (Vec<U>, RunStats)
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let started = Instant::now();
    let threads = cfg.threads.max(1).min(tasks.max(1));
    if threads <= 1 || tasks <= 1 {
        let t0 = Instant::now();
        let out: Vec<U> = (0..tasks).map(&f).collect();
        let busy = t0.elapsed().as_secs_f64();
        let stats = RunStats {
            tasks: tasks as u64,
            samples,
            threads: 1,
            wall_seconds: started.elapsed().as_secs_f64(),
            busy_seconds: vec![busy],
        };
        return (out, stats);
    }

    let slots: Vec<Mutex<Option<U>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let mut busy_seconds = vec![0.0; threads];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let slots = &slots;
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    // Pin the observability thread ordinal to `1 + worker`
                    // so span ownership and Chrome-trace timelines name
                    // workers stably across parallel regions (0 stays the
                    // main thread).
                    mss_obs::set_thread_ordinal(1 + worker as u32);
                    let mut busy = 0.0;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        let t0 = Instant::now();
                        let result = f(i);
                        busy += t0.elapsed().as_secs_f64();
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    }
                    busy
                })
            })
            .collect();
        for (k, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(busy) => busy_seconds[k] = busy,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let out = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("task completed without a result")
        })
        .collect();
    let stats = RunStats {
        tasks: tasks as u64,
        samples,
        threads,
        wall_seconds: started.elapsed().as_secs_f64(),
        busy_seconds,
    };
    (out, stats)
}

/// Maps `f` over `items` in parallel, returning results **in item order**.
///
/// `f` receives `(index, &item)`; derive any randomness from the index (see
/// [`task_rng`]) to keep the run deterministic across thread counts.
pub fn par_map<T, U, F>(cfg: &ParallelConfig, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_stats(cfg, items, f).0
}

/// [`par_map`] with the run's [`RunStats`].
pub fn par_map_stats<T, U, F>(cfg: &ParallelConfig, items: &[T], f: F) -> (Vec<U>, RunStats)
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    run_indexed(cfg, items.len(), items.len() as u64, |i| f(i, &items[i]))
}

/// Splits `0..total` into [`ParallelConfig::chunk`]-sized ranges and runs
/// `f(chunk_index, range)` for each, returning per-chunk results **in chunk
/// order**.
///
/// Chunk boundaries depend only on `total` and `cfg.chunk` — not on the
/// thread count — so a chunked reduction merged in chunk order is
/// bit-identical at any parallelism.
pub fn par_chunks<U, F>(cfg: &ParallelConfig, total: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize, Range<usize>) -> U + Sync,
{
    par_chunks_stats(cfg, total, f).0
}

/// [`par_chunks`] with the run's [`RunStats`].
pub fn par_chunks_stats<U, F>(cfg: &ParallelConfig, total: usize, f: F) -> (Vec<U>, RunStats)
where
    U: Send,
    F: Fn(usize, Range<usize>) -> U + Sync,
{
    let chunk = cfg.chunk.max(1);
    let tasks = total.div_ceil(chunk);
    run_indexed(cfg, tasks, total as u64, |i| {
        let lo = i * chunk;
        let hi = (lo + chunk).min(total);
        f(i, lo..hi)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_units::rng::Rng;

    #[test]
    fn par_map_preserves_order() {
        let cfg = ParallelConfig::serial().with_threads(4);
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&cfg, &items, |_, &x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let cfg = ParallelConfig::serial().with_threads(8);
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&cfg, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&cfg, &[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn par_chunks_covers_every_index_once() {
        let cfg = ParallelConfig::serial().with_threads(3).with_chunk(7);
        let ranges = par_chunks(&cfg, 100, |_, r| r);
        let mut seen = [false; 100];
        for r in ranges {
            for i in r {
                assert!(!seen[i], "index {i} covered twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn results_are_thread_count_invariant() {
        // Each chunk draws from its own stream; the merged output must be
        // identical at 1, 2 and 8 threads.
        let run = |threads: usize| -> Vec<u64> {
            let cfg = ParallelConfig::serial()
                .with_threads(threads)
                .with_chunk(16);
            par_chunks(&cfg, 200, |idx, range| {
                let mut rng = task_rng(77, idx as u64);
                range.map(|_| rng.next_u64()).fold(0u64, u64::wrapping_add)
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn stats_count_tasks_and_samples() {
        let cfg = ParallelConfig::serial().with_threads(2).with_chunk(10);
        let (_, stats) = par_chunks_stats(&cfg, 95, |_, r| r.len());
        assert_eq!(stats.tasks, 10);
        assert_eq!(stats.samples, 95);
        assert!(stats.wall_seconds >= 0.0);
        assert_eq!(stats.busy_seconds.len(), stats.threads);
        let table = stats.to_table();
        assert!(table.contains("tasks 10"), "{table}");
        assert!(stats.samples_per_second() >= 0.0);
        assert!(stats.mean_utilization() >= 0.0);
    }

    #[test]
    fn serial_fast_path_reports_one_thread() {
        let cfg = ParallelConfig::serial();
        let (out, stats) = par_map_stats(&cfg, &[1, 2, 3], |_, &x: &i32| x);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn config_floors_at_one() {
        assert_eq!(ParallelConfig::serial().with_threads(0).threads, 1);
        assert_eq!(ParallelConfig::serial().with_chunk(0).chunk, 1);
    }

    #[test]
    fn from_env_yields_positive_threads() {
        // Whatever the environment says, the policy must be runnable.
        let cfg = ParallelConfig::from_env();
        assert!(cfg.threads >= 1);
        assert_eq!(cfg.chunk, DEFAULT_CHUNK);
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("8"), Ok(8));
        assert_eq!(parse_threads(" 4 "), Ok(4));
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("128"), Ok(128));
    }

    #[test]
    fn parse_threads_rejects_garbled_values_with_reasons() {
        for bad in ["eight", "-2", "0", "", "  ", "3.5", "4x", "+-1"] {
            let err = parse_threads(bad).expect_err(&format!("{bad:?} should be rejected"));
            assert!(!err.is_empty(), "{bad:?} error should explain itself");
        }
        // The zero case names the constraint, the word case echoes the value.
        assert!(parse_threads("0").unwrap_err().contains("positive"));
        assert!(parse_threads("eight").unwrap_err().contains("eight"));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panics_propagate() {
        let cfg = ParallelConfig::serial().with_threads(4);
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(&cfg, &items, |i, _| {
            if i == 33 {
                panic!("boom");
            }
            i
        });
    }
}
