//! The fault-tolerant sweep supervisor.
//!
//! [`par_map`](crate::par_map)/[`par_chunks`](crate::par_chunks) are the
//! right engine for healthy sweeps, but they are all-or-nothing: one panicking
//! task unwinds the whole pool, a hung task has no budget, and a killed sweep
//! loses everything in flight. This module wraps the same deterministic
//! indexed-task engine in a supervision layer:
//!
//! - **panic isolation** — every task attempt runs under
//!   [`std::panic::catch_unwind`]; a panic becomes a structured
//!   [`TaskFailure`] in the sweep's failure manifest instead of a process
//!   abort,
//! - **deadlines** — a per-task time budget ([`SupervisorConfig::deadline`],
//!   `MSS_DEADLINE_MS`) enforced through cooperative [`CancelToken`]s that
//!   long tasks poll at chunk boundaries (`mss-gemsim` access chunks,
//!   `mss-vaet` Monte Carlo batches, `mss-spice` batched-DC chunks),
//! - **deterministic bounded retry** — a failed attempt is retried up to
//!   [`SupervisorConfig::retry_max`] times with a backoff schedule derived
//!   from the task's own RNG stream, so a retried sweep replays
//!   bit-identically at any `MSS_THREADS`,
//! - **graceful degradation** — the sweep returns a [`PartialSweep`]:
//!   completed results in task order plus a per-task failure manifest, never
//!   all-or-nothing.
//!
//! # Determinism contract
//!
//! Task bodies must derive everything random from `(seed, task index)` — the
//! same contract as [`par_map`](crate::par_map) — and must **not** derive
//! anything from [`TaskCtx::attempt`] except fault-injection decisions. Under
//! that contract a task that succeeds on attempt `k` produces exactly the
//! bytes it would have produced on attempt 0, so the surviving subset of a
//! chaotic sweep is bit-identical to the same subset of a healthy one.
//! Deadlines are inherently wall-clock dependent: *which* tasks a deadline
//! kills can vary between runs, but every task that completes is still
//! bit-exact.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::{task_rng, ParallelConfig, RunStats};
use mss_units::rng::Rng;

/// Environment variable holding the per-task deadline in milliseconds
/// (`0` disables the deadline; garbled values warn once and are ignored).
pub const DEADLINE_ENV: &str = "MSS_DEADLINE_MS";

/// Environment variable holding the per-task retry budget (retries *after*
/// the first attempt; garbled values warn once and are ignored).
pub const RETRY_ENV: &str = "MSS_RETRY_MAX";

/// Domain-separation constant folded into the backoff RNG stream so backoff
/// draws never correlate with the task's own sample draws.
const BACKOFF_DOMAIN: u64 = 0x5355_5045_5256_0001; // "SUPERV"+1

/// Supervision policy for one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Per-task wall-clock budget; `None` = unlimited. Enforced
    /// cooperatively: tasks observe it through [`TaskCtx::is_cancelled`] at
    /// chunk boundaries, and the engine refuses to start new attempts for a
    /// task whose budget is spent.
    pub deadline: Option<Duration>,
    /// Retries after the first attempt (0 = fail fast).
    pub retry_max: u32,
    /// Upper bound on one deterministic backoff sleep.
    pub max_backoff: Duration,
    /// Seed of the backoff schedule (independent of task seeds).
    pub seed: u64,
    /// Sweep label stamped on telemetry-bus progress/heartbeat/failure
    /// events (e.g. `gemsim.run_many`); `""` renders as `sweep`.
    pub label: &'static str,
}

impl SupervisorConfig {
    /// No deadline, no retries: supervised execution with panic isolation
    /// and partial results only.
    pub const fn disabled() -> Self {
        Self {
            deadline: None,
            retry_max: 0,
            max_backoff: Duration::from_millis(20),
            seed: 0,
            label: "",
        }
    }

    /// Reads the policy from the environment: [`DEADLINE_ENV`] and
    /// [`RETRY_ENV`], both following the `MSS_THREADS` warn-once convention
    /// (a garbled value warns on stderr once, bumps
    /// `exec.bad_deadline_env` / `exec.bad_retry_env`, and falls back to
    /// the safe default — never a panic, never a silent misconfiguration).
    pub fn from_env() -> Self {
        let mut cfg = Self::disabled();
        if let Ok(raw) = std::env::var(DEADLINE_ENV) {
            if !raw.trim().is_empty() {
                match parse_deadline_ms(&raw) {
                    Ok(deadline) => cfg.deadline = deadline,
                    Err(why) => {
                        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                        crate::warn_ignored_env_once(
                            &WARN_ONCE,
                            "exec.bad_deadline_env",
                            format!(
                                "warning: ignoring {DEADLINE_ENV}={raw:?} ({why}); \
                                 tasks run without a deadline"
                            ),
                        );
                    }
                }
            }
        }
        if let Ok(raw) = std::env::var(RETRY_ENV) {
            if !raw.trim().is_empty() {
                match parse_retry_max(&raw) {
                    Ok(n) => cfg.retry_max = n,
                    Err(why) => {
                        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                        crate::warn_ignored_env_once(
                            &WARN_ONCE,
                            "exec.bad_retry_env",
                            format!(
                                "warning: ignoring {RETRY_ENV}={raw:?} ({why}); \
                                 failed tasks are not retried"
                            ),
                        );
                    }
                }
            }
        }
        cfg
    }

    /// Returns the policy with a per-task deadline.
    pub const fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the policy with a retry budget.
    pub const fn with_retry_max(mut self, retry_max: u32) -> Self {
        self.retry_max = retry_max;
        self
    }

    /// Returns the policy with a backoff seed.
    pub const fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the policy with a backoff cap (0 disables backoff sleeps —
    /// useful in tests and chaos benches).
    pub const fn with_max_backoff(mut self, max_backoff: Duration) -> Self {
        self.max_backoff = max_backoff;
        self
    }

    /// Returns the policy with a telemetry sweep label.
    pub const fn with_label(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }

    /// The label stamped on bus events: [`Self::label`], or `sweep` when
    /// unset.
    pub fn effective_label(&self) -> &'static str {
        if self.label.is_empty() {
            "sweep"
        } else {
            self.label
        }
    }

    /// The deterministic backoff before retry `attempt` (1-based) of task
    /// `index`: drawn from the task's dedicated backoff RNG stream and
    /// scaled exponentially, capped at [`Self::max_backoff`].
    ///
    /// A pure function of `(seed, index, attempt)` — the schedule replays
    /// identically at any thread count.
    pub fn backoff(&self, index: u64, attempt: u32) -> Duration {
        let cap = self.max_backoff.as_nanos() as u64;
        if cap == 0 || attempt == 0 {
            return Duration::ZERO;
        }
        let mut rng = task_rng(self.seed ^ BACKOFF_DOMAIN, index);
        // attempt-th draw of the stream: skip deterministically.
        let mut draw = rng.next_u64();
        for _ in 1..attempt {
            draw = rng.next_u64();
        }
        // Exponential floor: the jitter window shrinks toward the cap as
        // attempts accumulate, so later retries wait at least as long.
        let scale = 1u64 << attempt.min(20);
        let window = (cap / scale.max(1)).max(1);
        Duration::from_nanos(cap.saturating_sub(window) + draw % window)
    }
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Parses an [`DEADLINE_ENV`] value: a non-negative integer millisecond
/// count; `0` means "no deadline".
///
/// # Errors
///
/// A human-readable description of the rejected value.
pub fn parse_deadline_ms(raw: &str) -> Result<Option<Duration>, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value".to_string());
    }
    match trimmed.parse::<u64>() {
        Ok(0) => Ok(None),
        Ok(ms) => Ok(Some(Duration::from_millis(ms))),
        Err(_) => Err(format!("not a millisecond count: {trimmed:?}")),
    }
}

/// Parses an [`RETRY_ENV`] value: a non-negative integer retry budget.
///
/// # Errors
///
/// A human-readable description of the rejected value.
pub fn parse_retry_max(raw: &str) -> Result<u32, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value".to_string());
    }
    trimmed
        .parse::<u32>()
        .map_err(|_| format!("not a retry count: {trimmed:?}"))
}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<CancelInner>>,
}

impl CancelInner {
    fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if matches!(self.deadline, Some(d) if Instant::now() >= d) {
            return true;
        }
        self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }
}

/// A cooperative cancellation token.
///
/// Cheap to clone and to poll; long-running tasks check
/// [`is_cancelled`](Self::is_cancelled) at chunk boundaries and bail out
/// with their domain's `Cancelled` error. Tokens form a chain: a child
/// created by [`child_with_deadline`](Self::child_with_deadline) is
/// cancelled when its own deadline passes *or* any ancestor is cancelled.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A token that is never cancelled until [`cancel`](Self::cancel).
    pub fn new() -> Self {
        Self {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that auto-cancels `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        Self::new().child_with_deadline(Some(budget))
    }

    /// A child token cancelled when `budget` (from now) elapses or this
    /// token is cancelled. `None` budget inherits cancellation only.
    pub fn child_with_deadline(&self, budget: Option<Duration>) -> Self {
        Self {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: budget.map(|b| Instant::now() + b),
                parent: Some(self.inner.clone()),
            }),
        }
    }

    /// Requests cancellation (idempotent; descendants observe it).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True when this token (or an ancestor) is cancelled or past its
    /// deadline.
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }

    /// Time left until the *nearest* deadline anywhere on this token's
    /// chain: `None` when no ancestor carries one, zero once it has passed.
    /// This is the `budget_seconds` a sweep's progress events report.
    pub fn budget_remaining(&self) -> Option<Duration> {
        let now = Instant::now();
        let mut best: Option<Duration> = None;
        let mut cur: Option<&CancelInner> = Some(&self.inner);
        while let Some(inner) = cur {
            if let Some(d) = inner.deadline {
                let rem = d.saturating_duration_since(now);
                best = Some(best.map_or(rem, |b: Duration| b.min(rem)));
            }
            cur = inner.parent.as_deref();
        }
        best
    }

    /// True when this token's *own* deadline (not an ancestor's flag) has
    /// passed. Used to classify a failure as deadline-vs-external.
    fn own_deadline_passed(&self) -> bool {
        matches!(self.inner.deadline, Some(d) if Instant::now() >= d)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-attempt execution context handed to supervised task bodies.
#[derive(Debug)]
pub struct TaskCtx<'a> {
    /// Task index in the sweep (the determinism coordinate).
    pub index: usize,
    /// Attempt number, 0-based. Use **only** for fault-injection decisions;
    /// deriving results from it breaks the bit-replay contract.
    pub attempt: u32,
    token: &'a CancelToken,
}

impl TaskCtx<'_> {
    /// The attempt's cancellation token (per-task deadline chained to the
    /// sweep token); pass it down to chunk-boundary checks.
    pub fn token(&self) -> &CancelToken {
        self.token
    }

    /// True when this attempt should stop at the next chunk boundary.
    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled()
    }
}

/// Why a supervised task did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The task panicked (payload message captured).
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The task returned its domain error.
    Failed {
        /// The rendered error.
        message: String,
    },
    /// The task's per-task time budget ran out.
    DeadlineExceeded,
    /// The sweep was cancelled externally.
    Cancelled,
}

impl FailureKind {
    /// Stable kebab-case tag used in manifests and counters.
    pub fn tag(&self) -> &'static str {
        match self {
            FailureKind::Panicked { .. } => "panicked",
            FailureKind::Failed { .. } => "failed",
            FailureKind::DeadlineExceeded => "deadline-exceeded",
            FailureKind::Cancelled => "cancelled",
        }
    }

    /// Is retrying this failure ever useful? Deadline/cancellation are
    /// terminal: the budget that killed attempt `k` would kill `k+1` too.
    fn retryable(&self) -> bool {
        matches!(
            self,
            FailureKind::Panicked { .. } | FailureKind::Failed { .. }
        )
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panicked { message } => write!(f, "panicked: {message}"),
            FailureKind::Failed { message } => write!(f, "failed: {message}"),
            FailureKind::DeadlineExceeded => f.write_str("deadline exceeded"),
            FailureKind::Cancelled => f.write_str("cancelled"),
        }
    }
}

/// One task's terminal failure record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// Task index in the sweep.
    pub index: usize,
    /// Attempts actually executed (0 = never started: cancelled in queue).
    pub attempts: u32,
    /// Terminal classification.
    pub kind: FailureKind,
}

impl TaskFailure {
    /// One NDJSON manifest line (stable field order, JSON-escaped message).
    pub fn to_json_line(&self) -> String {
        let message = match &self.kind {
            FailureKind::Panicked { message } | FailureKind::Failed { message } => message.as_str(),
            _ => "",
        };
        let mut escaped = String::with_capacity(message.len());
        for c in message.chars() {
            match c {
                '"' => escaped.push_str("\\\""),
                '\\' => escaped.push_str("\\\\"),
                '\n' => escaped.push_str("\\n"),
                '\r' => escaped.push_str("\\r"),
                '\t' => escaped.push_str("\\t"),
                c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
                c => escaped.push(c),
            }
        }
        format!(
            "{{\"type\":\"task-failure\",\"index\":{},\"attempts\":{},\"kind\":\"{}\",\"message\":\"{}\"}}",
            self.index,
            self.attempts,
            self.kind.tag(),
            escaped
        )
    }
}

/// The outcome of a supervised sweep: completed results in task order plus
/// the failure manifest — graceful degradation instead of all-or-nothing.
#[derive(Debug, Clone)]
pub struct PartialSweep<U> {
    /// One slot per task, in task order; `None` where the task failed.
    pub results: Vec<Option<U>>,
    /// Terminal failures, sorted by task index.
    pub failures: Vec<TaskFailure>,
    /// The run's throughput counters.
    pub stats: RunStats,
}

impl<U> PartialSweep<U> {
    /// Number of tasks in the sweep.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True for a zero-task sweep.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Did every task complete?
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Completed `(index, result)` pairs in task order.
    pub fn completed(&self) -> impl Iterator<Item = (usize, &U)> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|u| (i, u)))
    }

    /// Number of completed tasks.
    pub fn completed_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_some()).count()
    }

    /// All results, or the first failure (all-or-nothing view for callers
    /// that cannot use a partial sweep).
    ///
    /// # Errors
    ///
    /// The lowest-index [`TaskFailure`] when any task failed.
    pub fn into_results(mut self) -> Result<Vec<U>, TaskFailure> {
        if let Some(first) = self.failures.first() {
            return Err(first.clone());
        }
        Ok(self
            .results
            .drain(..)
            .map(|r| r.expect("complete sweep has every slot filled"))
            .collect())
    }

    /// The NDJSON failure manifest (one line per failure, index order;
    /// empty string for a complete sweep).
    pub fn failure_manifest(&self) -> String {
        let mut out = String::new();
        for f in &self.failures {
            out.push_str(&f.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The supervised engine: the deterministic indexed-task queue of
/// [`crate::par_map`] with per-attempt panic isolation, per-task deadline
/// tokens, and deterministic bounded retry.
fn run_supervised<U, F>(
    cfg: &ParallelConfig,
    sup: &SupervisorConfig,
    sweep_token: &CancelToken,
    tasks: usize,
    samples: u64,
    f: F,
) -> PartialSweep<U>
where
    U: Send,
    F: Fn(&TaskCtx<'_>) -> Result<U, FailureKind> + Sync,
{
    let _span = mss_obs::span("exec.supervise");
    let started = Instant::now();
    let threads = cfg.threads.max(1).min(tasks.max(1));
    mss_obs::counter_add("exec.supervise.tasks", tasks as u64);

    // Live telemetry: progress after every settled task, a heartbeat per
    // worker, one failure event per terminal failure. All of it rides the
    // opt-in event bus; with the bus off the cost is one atomic add per
    // task.
    let events_on = mss_obs::events::bus_enabled();
    let label = sup.effective_label();
    let settled = AtomicU64::new(0);
    let retried_total = AtomicU64::new(0);
    let note_settled = |_index: usize| {
        let done = settled.fetch_add(1, Ordering::Relaxed) + 1;
        if events_on {
            mss_obs::events::publish(mss_obs::events::EventPayload::Progress {
                sweep: label.to_string(),
                done,
                total: tasks as u64,
                retried: retried_total.load(Ordering::Relaxed),
                budget_seconds: sweep_token.budget_remaining().map(|d| d.as_secs_f64()),
            });
        }
    };
    let heartbeat = |worker: u32, tasks_done: u64, busy_seconds: f64| {
        if events_on {
            mss_obs::events::publish(mss_obs::events::EventPayload::Heartbeat {
                sweep: label.to_string(),
                worker,
                tasks_done,
                busy_seconds,
            });
        }
    };
    let note_failure = |fail: &TaskFailure| {
        if events_on {
            mss_obs::events::publish(mss_obs::events::EventPayload::Failure {
                sweep: label.to_string(),
                index: fail.index as u64,
                attempts: fail.attempts,
                kind: fail.kind.tag().to_string(),
                message: fail.kind.to_string(),
            });
        }
    };

    // One attempt of task `i`, fully isolated: panics are caught and
    // classified, deadline/cancellation rechecked on failure so a budget
    // that expired mid-attempt is reported as such, not as the error it
    // happened to surface as.
    let attempt_one = |i: usize, attempt: u32| -> Result<U, FailureKind> {
        let task_token = sweep_token.child_with_deadline(sup.deadline);
        let ctx = TaskCtx {
            index: i,
            attempt,
            token: &task_token,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
        let kind = match outcome {
            Ok(Ok(u)) => return Ok(u),
            Ok(Err(kind)) => kind,
            Err(payload) => {
                mss_obs::counter_add("exec.supervise.panics", 1);
                FailureKind::Panicked {
                    message: panic_message(payload.as_ref()),
                }
            }
        };
        // Classify by cause: an expired per-task budget wins over the
        // surface error, an externally cancelled sweep over both.
        if sweep_token.is_cancelled() {
            Err(FailureKind::Cancelled)
        } else if task_token.own_deadline_passed() {
            Err(FailureKind::DeadlineExceeded)
        } else {
            Err(kind)
        }
    };

    // Run-to-terminal for one task: retry retryable failures on a
    // deterministic backoff schedule.
    let run_task = |i: usize| -> Result<U, TaskFailure> {
        let mut attempt = 0u32;
        loop {
            match attempt_one(i, attempt) {
                Ok(u) => {
                    mss_obs::counter_add("exec.supervise.succeeded", 1);
                    return Ok(u);
                }
                Err(kind) => {
                    if kind.retryable() && attempt < sup.retry_max {
                        attempt += 1;
                        mss_obs::counter_add("exec.supervise.retries", 1);
                        retried_total.fetch_add(1, Ordering::Relaxed);
                        let backoff = sup.backoff(i as u64, attempt);
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                        continue;
                    }
                    match &kind {
                        FailureKind::DeadlineExceeded => {
                            mss_obs::counter_add("exec.supervise.deadline", 1);
                        }
                        FailureKind::Cancelled => {
                            mss_obs::counter_add("exec.supervise.cancelled", 1);
                        }
                        _ => mss_obs::counter_add("exec.supervise.failed", 1),
                    }
                    let fail = TaskFailure {
                        index: i,
                        attempts: attempt + 1,
                        kind,
                    };
                    note_failure(&fail);
                    return Err(fail);
                }
            }
        }
    };

    // A task claimed after the sweep died is recorded unstarted.
    let skip_task = |i: usize| -> TaskFailure {
        mss_obs::counter_add("exec.supervise.cancelled", 1);
        let fail = TaskFailure {
            index: i,
            attempts: 0,
            kind: FailureKind::Cancelled,
        };
        note_failure(&fail);
        fail
    };

    if threads <= 1 || tasks <= 1 {
        let t0 = Instant::now();
        let mut results = Vec::with_capacity(tasks);
        let mut failures = Vec::new();
        for i in 0..tasks {
            if sweep_token.is_cancelled() {
                results.push(None);
                failures.push(skip_task(i));
                note_settled(i);
                continue;
            }
            match run_task(i) {
                Ok(u) => results.push(Some(u)),
                Err(fail) => {
                    results.push(None);
                    failures.push(fail);
                }
            }
            note_settled(i);
            heartbeat(0, (i + 1) as u64, t0.elapsed().as_secs_f64());
        }
        let busy = t0.elapsed().as_secs_f64();
        let sweep = PartialSweep {
            results,
            failures,
            stats: RunStats {
                tasks: tasks as u64,
                samples,
                threads: 1,
                wall_seconds: started.elapsed().as_secs_f64(),
                busy_seconds: vec![busy],
            },
        };
        return finish_sweep(sup, label, events_on, sweep);
    }

    let slots: Vec<Mutex<Option<U>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let failures = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let mut busy_seconds = vec![0.0; threads];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let slots = &slots;
                let failures = &failures;
                let next = &next;
                let run_task = &run_task;
                let skip_task = &skip_task;
                let note_settled = &note_settled;
                let heartbeat = &heartbeat;
                scope.spawn(move || {
                    mss_obs::set_thread_ordinal(1 + worker as u32);
                    let mut busy = 0.0;
                    let mut tasks_done = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        if sweep_token.is_cancelled() {
                            failures
                                .lock()
                                .expect("failure manifest poisoned")
                                .push(skip_task(i));
                            note_settled(i);
                            continue;
                        }
                        let t0 = Instant::now();
                        let outcome = run_task(i);
                        busy += t0.elapsed().as_secs_f64();
                        tasks_done += 1;
                        match outcome {
                            Ok(u) => {
                                *slots[i].lock().expect("result slot poisoned") = Some(u);
                            }
                            Err(fail) => failures
                                .lock()
                                .expect("failure manifest poisoned")
                                .push(fail),
                        }
                        note_settled(i);
                        heartbeat(1 + worker as u32, tasks_done, busy);
                    }
                    busy
                })
            })
            .collect();
        for (k, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                // A worker thread itself cannot panic (attempts are caught),
                // so a join failure is an engine bug worth propagating.
                Ok(busy) => busy_seconds[k] = busy,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let results = slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned"))
        .collect();
    let mut failures = failures.into_inner().expect("failure manifest poisoned");
    failures.sort_by_key(|f| f.index);
    let sweep = PartialSweep {
        results,
        failures,
        stats: RunStats {
            tasks: tasks as u64,
            samples,
            threads,
            wall_seconds: started.elapsed().as_secs_f64(),
            busy_seconds,
        },
    };
    finish_sweep(sup, label, events_on, sweep)
}

/// End-of-sweep bookkeeping: when the event bus is live and the sweep ended
/// with failures (panic, deadline, cancellation or domain error), dump the
/// flight-recorder ring to `target/flight_<label>_<seed>.ndjson` so the
/// last moments before the failure survive the process.
fn finish_sweep<U>(
    sup: &SupervisorConfig,
    label: &str,
    events_on: bool,
    sweep: PartialSweep<U>,
) -> PartialSweep<U> {
    if events_on && !sweep.failures.is_empty() {
        let digest = format!("{label}_{:016x}", sup.seed);
        let reason = format!(
            "partial sweep: {} of {} tasks failed",
            sweep.failures.len(),
            sweep.len()
        );
        mss_obs::counter_add("exec.supervise.flight_dumps", 1);
        match mss_obs::events::bus().dump_flight(&digest, &reason) {
            Ok(path) => eprintln!("flight recorder: {reason} -> {}", path.display()),
            Err(e) => eprintln!("flight recorder: dump failed: {e}"),
        }
    }
    sweep
}

/// Classifies a domain error: a cooperative cancellation bail-out (the task
/// observed its token) maps onto the supervisor's own kinds so the engine
/// can distinguish "budget ran out" from "the computation is broken".
fn classify_err<E: std::fmt::Display>(e: &E, ctx: &TaskCtx<'_>) -> FailureKind {
    if ctx.is_cancelled() {
        // Which budget fired is resolved by the engine afterwards.
        FailureKind::Cancelled
    } else {
        FailureKind::Failed {
            message: e.to_string(),
        }
    }
}

/// Supervised [`crate::par_map`]: maps `f` over `items`, isolating panics,
/// enforcing the per-task deadline, retrying deterministically, and
/// returning a [`PartialSweep`] in item order.
pub fn supervised_map<T, U, E, F>(
    cfg: &ParallelConfig,
    sup: &SupervisorConfig,
    items: &[T],
    f: F,
) -> PartialSweep<U>
where
    T: Sync,
    U: Send,
    E: std::fmt::Display,
    F: Fn(&TaskCtx<'_>, &T) -> Result<U, E> + Sync,
{
    supervised_map_with(cfg, sup, &CancelToken::new(), items, f)
}

/// [`supervised_map`] under an external sweep token — cancel it to stop
/// scheduling new tasks (in-flight tasks observe it cooperatively).
pub fn supervised_map_with<T, U, E, F>(
    cfg: &ParallelConfig,
    sup: &SupervisorConfig,
    token: &CancelToken,
    items: &[T],
    f: F,
) -> PartialSweep<U>
where
    T: Sync,
    U: Send,
    E: std::fmt::Display,
    F: Fn(&TaskCtx<'_>, &T) -> Result<U, E> + Sync,
{
    run_supervised(cfg, sup, token, items.len(), items.len() as u64, |ctx| {
        f(ctx, &items[ctx.index]).map_err(|e| classify_err(&e, ctx))
    })
}

/// Supervised [`crate::par_chunks`]: splits `0..total` into
/// [`ParallelConfig::chunk`]-sized ranges (boundaries independent of the
/// thread count) and supervises each chunk as one task.
pub fn supervised_chunks<U, E, F>(
    cfg: &ParallelConfig,
    sup: &SupervisorConfig,
    total: usize,
    f: F,
) -> PartialSweep<U>
where
    U: Send,
    E: std::fmt::Display,
    F: Fn(&TaskCtx<'_>, Range<usize>) -> Result<U, E> + Sync,
{
    let chunk = cfg.chunk.max(1);
    let tasks = total.div_ceil(chunk);
    run_supervised(cfg, sup, &CancelToken::new(), tasks, total as u64, |ctx| {
        let lo = ctx.index * chunk;
        let hi = (lo + chunk).min(total);
        f(ctx, lo..hi).map_err(|e| classify_err(&e, ctx))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threads: usize) -> ParallelConfig {
        ParallelConfig::serial().with_threads(threads)
    }

    fn quiet_sup() -> SupervisorConfig {
        SupervisorConfig::disabled().with_max_backoff(Duration::ZERO)
    }

    #[test]
    fn complete_sweep_matches_par_map() {
        for threads in [1, 2, 8] {
            let items: Vec<u64> = (0..100).collect();
            let sweep = supervised_map(&cfg(threads), &quiet_sup(), &items, |_, &x| {
                Ok::<_, String>(x * 7)
            });
            assert!(sweep.is_complete());
            assert_eq!(sweep.completed_count(), 100);
            let out = sweep.into_results().expect("complete");
            assert_eq!(out, items.iter().map(|x| x * 7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panics_become_structured_failures_not_aborts() {
        for threads in [1, 4] {
            let items: Vec<u32> = (0..64).collect();
            let sweep = supervised_map(&cfg(threads), &quiet_sup(), &items, |_, &x| {
                if x % 10 == 3 {
                    panic!("injected {x}");
                }
                Ok::<_, String>(x)
            });
            assert_eq!(sweep.failures.len(), 7, "threads={threads}");
            for f in &sweep.failures {
                assert_eq!(f.index % 10, 3);
                assert_eq!(f.attempts, 1);
                match &f.kind {
                    FailureKind::Panicked { message } => {
                        assert!(message.contains("injected"), "{message}");
                    }
                    other => panic!("expected Panicked, got {other:?}"),
                }
            }
            // Survivors are intact and in place.
            for (i, u) in sweep.completed() {
                assert_eq!(i as u32, *u);
            }
        }
    }

    #[test]
    fn domain_errors_are_recorded_with_their_message() {
        let items: Vec<u32> = (0..10).collect();
        let sweep = supervised_map(&cfg(2), &quiet_sup(), &items, |_, &x| {
            if x == 4 {
                Err(format!("bad item {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(sweep.failures.len(), 1);
        assert_eq!(
            sweep.failures[0].kind,
            FailureKind::Failed {
                message: "bad item 4".into()
            }
        );
        let err = sweep.into_results().expect_err("has a failure");
        assert_eq!(err.index, 4);
    }

    #[test]
    fn retry_replays_bit_identically_and_converges() {
        use std::sync::atomic::AtomicU64;
        // Attempt 0 of every third task panics; attempt 1 succeeds. The
        // retried sweep must equal the healthy sweep exactly.
        let items: Vec<u64> = (0..60).collect();
        let healthy = supervised_map(&cfg(4), &quiet_sup(), &items, |ctx, &x| {
            let mut rng = task_rng(42, ctx.index as u64);
            Ok::<_, String>(x.wrapping_mul(rng.next_u64()))
        });
        let attempts = AtomicU64::new(0);
        let sup = quiet_sup().with_retry_max(2);
        for threads in [1, 2, 8] {
            let chaotic = supervised_map(&cfg(threads), &sup, &items, |ctx, &x| {
                attempts.fetch_add(1, Ordering::Relaxed);
                if ctx.index % 3 == 0 && ctx.attempt == 0 {
                    panic!("flaky");
                }
                let mut rng = task_rng(42, ctx.index as u64);
                Ok::<_, String>(x.wrapping_mul(rng.next_u64()))
            });
            assert!(chaotic.is_complete(), "threads={threads}");
            assert_eq!(chaotic.results, healthy.results, "threads={threads}");
        }
        assert!(attempts.load(Ordering::Relaxed) > 3 * 60);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let items = [0u8; 5];
        let sup = quiet_sup().with_retry_max(3);
        let sweep = supervised_map(&cfg(1), &sup, &items, |_, _| {
            Err::<u8, _>("always fails".to_string())
        });
        assert_eq!(sweep.completed_count(), 0);
        for f in &sweep.failures {
            assert_eq!(f.attempts, 4, "1 attempt + 3 retries");
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let sup = SupervisorConfig::disabled()
            .with_seed(9)
            .with_max_backoff(Duration::from_millis(8));
        for index in 0..16u64 {
            for attempt in 1..5u32 {
                let a = sup.backoff(index, attempt);
                assert_eq!(a, sup.backoff(index, attempt), "pure function");
                assert!(a <= sup.max_backoff);
            }
        }
        assert_eq!(sup.backoff(3, 0), Duration::ZERO);
        assert_eq!(
            quiet_sup().backoff(3, 2),
            Duration::ZERO,
            "zero cap disables sleeping"
        );
        // Later attempts wait at least as long on average (windows shrink
        // toward the cap): attempt 3's floor exceeds attempt 1's floor.
        let floor = |attempt: u32| {
            (0..32)
                .map(|i| sup.backoff(i, attempt))
                .min()
                .expect("nonempty")
        };
        assert!(floor(4) >= floor(1));
    }

    #[test]
    fn external_cancellation_stops_scheduling() {
        let token = CancelToken::new();
        token.cancel();
        let items: Vec<u32> = (0..20).collect();
        let sweep = supervised_map_with(&cfg(2), &quiet_sup(), &token, &items, |_, &x| {
            Ok::<_, String>(x)
        });
        assert_eq!(sweep.completed_count(), 0);
        assert_eq!(sweep.failures.len(), 20);
        for f in &sweep.failures {
            assert_eq!(f.kind, FailureKind::Cancelled);
            assert_eq!(f.attempts, 0, "never started");
        }
    }

    #[test]
    fn per_task_deadline_is_classified_and_not_retried() {
        // Every task stalls past its budget, then observes the token.
        let sup = quiet_sup()
            .with_deadline(Duration::from_millis(5))
            .with_retry_max(3);
        let items = [(); 6];
        let sweep = supervised_map(&cfg(3), &sup, &items, |ctx, _| {
            std::thread::sleep(Duration::from_millis(20));
            if ctx.is_cancelled() {
                return Err("cooperative bail-out".to_string());
            }
            Ok(())
        });
        assert_eq!(sweep.completed_count(), 0);
        for f in &sweep.failures {
            assert_eq!(f.kind, FailureKind::DeadlineExceeded);
            assert_eq!(f.attempts, 1, "deadline failures are not retried");
        }
    }

    #[test]
    fn token_chains_inherit_cancellation() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(None);
        let timed = parent.child_with_deadline(Some(Duration::from_secs(3600)));
        assert!(!child.is_cancelled());
        assert!(!timed.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert!(timed.is_cancelled());
        let expired = CancelToken::with_deadline(Duration::ZERO);
        assert!(expired.is_cancelled());
    }

    #[test]
    fn supervised_chunks_covers_everything_once() {
        let cfg = cfg(3).with_chunk(7);
        let sweep = supervised_chunks(&cfg, &quiet_sup(), 100, |_, r| Ok::<_, String>(r));
        assert!(sweep.is_complete());
        let mut seen = [false; 100];
        for r in sweep.into_results().expect("complete") {
            for i in r {
                assert!(!seen[i], "index {i} covered twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn failure_manifest_is_stable_ndjson() {
        let items: Vec<u32> = (0..12).collect();
        let sweep = supervised_map(&cfg(4), &quiet_sup(), &items, |_, &x| {
            if x % 4 == 1 {
                panic!("chaos \"quoted\"\npayload");
            }
            Ok::<_, String>(x)
        });
        let manifest = sweep.failure_manifest();
        assert_eq!(manifest.lines().count(), 3);
        let mut last = -1i64;
        for line in manifest.lines() {
            assert!(line.starts_with("{\"type\":\"task-failure\""), "{line}");
            assert!(line.contains("\\\"quoted\\\""), "{line}");
            assert!(line.contains("\\n"), "{line}");
            let idx: i64 = line
                .split("\"index\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .and_then(|s| s.parse().ok())
                .expect("index field");
            assert!(idx > last, "manifest sorted by index");
            last = idx;
        }
    }

    #[test]
    fn env_parsers_follow_the_threads_convention() {
        assert_eq!(
            parse_deadline_ms("250"),
            Ok(Some(Duration::from_millis(250)))
        );
        assert_eq!(
            parse_deadline_ms(" 10 "),
            Ok(Some(Duration::from_millis(10)))
        );
        assert_eq!(parse_deadline_ms("0"), Ok(None), "0 disables the deadline");
        for bad in ["fast", "-5", "2.5", "", "  "] {
            assert!(parse_deadline_ms(bad).is_err(), "{bad:?}");
        }
        assert_eq!(parse_retry_max("3"), Ok(3));
        assert_eq!(parse_retry_max("0"), Ok(0));
        for bad in ["many", "-1", "1.5", ""] {
            assert!(parse_retry_max(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn empty_sweep_is_trivially_complete() {
        let items: Vec<u32> = Vec::new();
        let sweep = supervised_map(&cfg(4), &quiet_sup(), &items, |_, &x| Ok::<_, String>(x));
        assert!(sweep.is_complete());
        assert!(sweep.is_empty());
        assert_eq!(sweep.failure_manifest(), "");
    }
}
