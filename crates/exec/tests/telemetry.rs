//! Supervisor telemetry contract: with the event bus live, a supervised
//! sweep streams progress/heartbeat/failure events whose *terminal*
//! snapshot — final done/total/retried and the failure set — is identical
//! at any `MSS_THREADS`, and a sweep that ends with failures dumps a
//! flight recording. One process, one `#[test]`, because the bus is a
//! process-global initialised exactly once.

use std::sync::atomic::Ordering;
use std::time::Duration;

use mss_exec::{supervised_map, ParallelConfig, SupervisorConfig};
use mss_obs::events::{self, EventPayload};

/// Terminal telemetry of one labelled sweep as seen on the bus.
#[derive(Debug, PartialEq)]
struct SweepSnapshot {
    final_done: u64,
    total: u64,
    final_retried: u64,
    progress_events: usize,
    /// `(index, attempts, kind)` triples, sorted by index.
    failures: Vec<(u64, u32, String)>,
    heartbeat_workers: Vec<u32>,
}

fn snapshot_for(label: &str) -> SweepSnapshot {
    let mut final_done = 0;
    let mut total = 0;
    let mut final_retried = 0;
    let mut progress_events = 0;
    let mut failures = Vec::new();
    let mut heartbeat_workers = Vec::new();
    for ev in events::bus().snapshot() {
        match &ev.payload {
            EventPayload::Progress {
                sweep,
                done,
                total: t,
                retried,
                ..
            } if sweep == label => {
                progress_events += 1;
                if *done >= final_done {
                    final_done = *done;
                    final_retried = *retried;
                }
                total = *t;
            }
            EventPayload::Failure {
                sweep,
                index,
                attempts,
                kind,
                ..
            } if sweep == label => failures.push((*index, *attempts, kind.clone())),
            EventPayload::Heartbeat { sweep, worker, .. }
                if sweep == label && !heartbeat_workers.contains(worker) =>
            {
                heartbeat_workers.push(*worker);
            }
            _ => {}
        }
    }
    failures.sort_unstable();
    heartbeat_workers.sort_unstable();
    SweepSnapshot {
        final_done,
        total,
        final_retried,
        progress_events,
        failures,
        heartbeat_workers,
    }
}

#[test]
fn supervised_sweeps_stream_identical_terminal_telemetry() {
    assert!(
        events::init_bus_with(true, None),
        "this test must own bus initialisation"
    );
    assert!(events::bus_enabled());

    // A chaotic sweep: every 5th task flakes once (retried to success),
    // task 7 always fails. 32 tasks, labels distinct per thread count so
    // the shared ring can be partitioned afterwards.
    let run = |label: &'static str, threads: usize| {
        let items: Vec<u64> = (0..32).collect();
        let cfg = ParallelConfig::serial().with_threads(threads);
        let sup = SupervisorConfig::disabled()
            .with_retry_max(2)
            .with_max_backoff(Duration::ZERO)
            .with_label(label);
        let attempts = std::sync::atomic::AtomicU64::new(0);
        let sweep = supervised_map(&cfg, &sup, &items, |ctx, &x| {
            attempts.fetch_add(1, Ordering::Relaxed);
            if ctx.index == 7 {
                return Err(format!("task {x} is cursed"));
            }
            if ctx.index % 5 == 0 && ctx.attempt == 0 {
                panic!("flaky {x}");
            }
            Ok::<_, String>(x * 3)
        });
        (sweep, attempts.into_inner())
    };

    let (s1, _) = run("t1", 1);
    let (s2, _) = run("t2", 2);
    let (s8, _) = run("t8", 8);

    // The sweeps themselves are bit-identical regardless of threads.
    assert_eq!(s1.results, s2.results);
    assert_eq!(s1.results, s8.results);
    assert_eq!(s1.failures, s8.failures);

    // And so is their terminal telemetry.
    let snap1 = snapshot_for("t1");
    let snap2 = snapshot_for("t2");
    let snap8 = snapshot_for("t8");
    assert_eq!(snap1.final_done, 32);
    assert_eq!(snap1.total, 32);
    // 7 flaky tasks retried once each; task 7 burned its full retry budget.
    assert_eq!(snap1.final_retried, 7 + 2);
    assert_eq!(snap1.progress_events, 32, "one progress per settled task");
    assert_eq!(snap1.failures, vec![(7, 3, "failed".to_string())]);
    assert_eq!(snap1.heartbeat_workers, vec![0], "serial path is worker 0");

    for (label, snap) in [("t2", &snap2), ("t8", &snap8)] {
        assert_eq!(snap.final_done, snap1.final_done, "{label}");
        assert_eq!(snap.total, snap1.total, "{label}");
        assert_eq!(snap.final_retried, snap1.final_retried, "{label}");
        assert_eq!(snap.progress_events, snap1.progress_events, "{label}");
        assert_eq!(snap.failures, snap1.failures, "{label}");
        // Threaded workers report as 1 + ordinal; which subset shows up
        // depends on scheduling, but every reporter is a spawned worker.
        assert!(
            snap.heartbeat_workers.iter().all(|&w| w >= 1),
            "{label}: {:?}",
            snap.heartbeat_workers
        );
    }

    // A failing sweep on a live bus leaves a flight recording behind.
    let flight = std::path::Path::new("target/flight_t8_0000000000000000.ndjson");
    assert!(flight.exists(), "missing {}", flight.display());
    let text = std::fs::read_to_string(flight).unwrap();
    let first = text.lines().next().unwrap();
    assert!(first.contains("\"type\":\"meta\""), "{first}");
    assert!(first.contains("\"mode\":\"events\""), "{first}");
    assert!(
        text.lines().any(|l| l.contains("\"kind\":\"failure\"")),
        "flight recording must carry the failure"
    );

    // Budget reporting: a deadline sweep's progress events carry a finite
    // remaining budget.
    let cfg = ParallelConfig::serial().with_threads(2);
    let sup = SupervisorConfig::disabled()
        .with_deadline(Duration::from_secs(3600))
        .with_label("budgeted");
    let items = [0u8; 4];
    let sweep = mss_exec::supervised_map_with(
        &cfg,
        &sup,
        &mss_exec::CancelToken::with_deadline(Duration::from_secs(3600)),
        &items,
        |_, &x| Ok::<_, String>(x),
    );
    assert!(sweep.is_complete());
    let budgets: Vec<Option<f64>> = events::bus()
        .snapshot()
        .iter()
        .filter_map(|ev| match &ev.payload {
            EventPayload::Progress {
                sweep,
                budget_seconds,
                ..
            } if sweep == "budgeted" => Some(*budget_seconds),
            _ => None,
        })
        .collect();
    assert_eq!(budgets.len(), 4);
    for b in budgets {
        let b = b.expect("deadline sweep reports a budget");
        assert!(b > 0.0 && b <= 3600.0, "{b}");
    }

    std::fs::remove_file(flight).ok();
    std::fs::remove_file("target/flight_t1_0000000000000000.ndjson").ok();
    std::fs::remove_file("target/flight_t2_0000000000000000.ndjson").ok();
}
