//! A McPAT-class architecture-level power and area estimator.
//!
//! MAGPIE extends the exploration framework with McPAT "to analyze not only
//! the energy consumption related to the memory components, but also to
//! evaluate the energy of the complete system including the processor cores,
//! buses, and memory controller". This crate consumes the activity report of
//! `mss-gemsim` and produces the component-level energy breakdown behind the
//! paper's Fig. 11 and the total energy / EDP behind Fig. 12.
//!
//! Modelling: event energies (per instruction, per cache access, per bus or
//! DRAM transaction) plus leakage power integrated over the run time. Cache
//! event energies and leakage travel inside the
//! [`CacheConfig`](mss_gemsim::cache::CacheConfig) records of the activity
//! report (they come from `mss-nvsim`), so swapping an SRAM L2 for an
//! STT-MRAM L2 automatically moves the breakdown.

#![deny(missing_docs)]

use mss_gemsim::core::CoreKind;
use mss_gemsim::stats::SimReport;

/// Per-core power parameters (McPAT-style, 45 nm defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePowerParams {
    /// Dynamic energy per retired instruction, joules.
    pub energy_per_instruction: f64,
    /// Static leakage per core, watts.
    pub leakage: f64,
    /// Core area, m².
    pub area: f64,
}

impl mss_pipe::StableHash for CorePowerParams {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_f64(self.energy_per_instruction);
        h.write_f64(self.leakage);
        h.write_f64(self.area);
    }
}

impl CorePowerParams {
    /// Cortex-A15-class big core at 45 nm.
    pub fn big_45nm() -> Self {
        Self {
            energy_per_instruction: 350e-12,
            leakage: 120e-3,
            area: 5.0e-6,
        }
    }

    /// Cortex-A7-class LITTLE core at 45 nm.
    pub fn little_45nm() -> Self {
        Self {
            energy_per_instruction: 90e-12,
            leakage: 18e-3,
            area: 0.9e-6,
        }
    }
}

/// System-level power-model configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McpatConfig {
    /// Big-core parameters.
    pub big: CorePowerParams,
    /// LITTLE-core parameters.
    pub little: CorePowerParams,
    /// Interconnect energy per cache-line transaction, joules.
    pub bus_energy_per_transaction: f64,
    /// Memory-controller energy per DRAM transaction, joules.
    pub mc_energy_per_transaction: f64,
    /// Memory-controller static power, watts.
    pub mc_leakage: f64,
    /// DRAM energy per transaction, joules.
    pub dram_energy_per_transaction: f64,
    /// DRAM background power, watts.
    pub dram_background_power: f64,
}

impl mss_pipe::StableHash for McpatConfig {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        self.big.stable_hash(h);
        self.little.stable_hash(h);
        h.write_f64(self.bus_energy_per_transaction);
        h.write_f64(self.mc_energy_per_transaction);
        h.write_f64(self.mc_leakage);
        h.write_f64(self.dram_energy_per_transaction);
        h.write_f64(self.dram_background_power);
    }
}

impl Default for McpatConfig {
    fn default() -> Self {
        Self {
            big: CorePowerParams::big_45nm(),
            little: CorePowerParams::little_45nm(),
            bus_energy_per_transaction: 120e-12,
            mc_energy_per_transaction: 1e-9,
            mc_leakage: 25e-3,
            dram_energy_per_transaction: 8e-9,
            dram_background_power: 0.10,
        }
    }
}

/// Energy of one system component over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentEnergy {
    /// Component name ("big cores", "LITTLE.L2", "DRAM", ...).
    pub name: String,
    /// Switching energy, joules.
    pub dynamic: f64,
    /// Leakage energy over the run, joules.
    pub leakage: f64,
}

impl ComponentEnergy {
    /// Dynamic + leakage.
    pub fn total(&self) -> f64 {
        self.dynamic + self.leakage
    }
}

/// The full power/energy report (one bar of the paper's Fig. 11).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Scenario / kernel label.
    pub label: String,
    /// Run time the energies were integrated over, seconds.
    pub runtime_seconds: f64,
    /// Component-level breakdown.
    pub components: Vec<ComponentEnergy>,
}

impl PowerReport {
    /// Total system energy, joules.
    pub fn total_energy(&self) -> f64 {
        self.components.iter().map(ComponentEnergy::total).sum()
    }

    /// Energy-delay product, J·s (the paper's Fig. 12 merit).
    pub fn edp(&self) -> f64 {
        self.total_energy() * self.runtime_seconds
    }

    /// Finds a component by name.
    pub fn component(&self, name: &str) -> Option<&ComponentEnergy> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Renders an ASCII breakdown table.
    pub fn to_table(&self) -> String {
        use mss_units::fmt::Eng;
        let mut out = format!(
            "== {} (runtime {}) ==\n{:<16} | {:>12} | {:>12} | {:>12}\n",
            self.label,
            Eng(self.runtime_seconds, "s"),
            "component",
            "dynamic",
            "leakage",
            "total"
        );
        for c in &self.components {
            out.push_str(&format!(
                "{:<16} | {:>12} | {:>12} | {:>12}\n",
                c.name,
                Eng(c.dynamic, "J").to_string(),
                Eng(c.leakage, "J").to_string(),
                Eng(c.total(), "J").to_string()
            ));
        }
        out.push_str(&format!(
            "{:<16} | {:>12} | {:>12} | {:>12}\n",
            "TOTAL",
            "",
            "",
            Eng(self.total_energy(), "J").to_string()
        ));
        out
    }
}

/// Evaluates the power model against a system-activity report.
pub fn evaluate(config: &McpatConfig, report: &SimReport) -> PowerReport {
    let t = report.runtime_seconds;
    let mut components = Vec::new();

    // Cores, grouped by kind.
    for kind in [CoreKind::Big, CoreKind::Little] {
        let params = match kind {
            CoreKind::Big => config.big,
            CoreKind::Little => config.little,
        };
        let cores: Vec<_> = report.cores.iter().filter(|c| c.kind == kind).collect();
        if cores.is_empty() {
            continue;
        }
        let dynamic: f64 = cores
            .iter()
            .map(|c| c.instructions as f64 * params.energy_per_instruction)
            .sum();
        let leakage = params.leakage * t * cores.len() as f64;
        components.push(ComponentEnergy {
            name: format!("{kind} cores"),
            dynamic,
            leakage,
        });
    }

    // Caches: per-access event energies + fills (one array write per miss).
    let mut bus_transactions = 0u64;
    for cache in &report.caches {
        let s = &cache.stats;
        let cfg = &cache.config;
        let dynamic = s.reads as f64 * cfg.read_energy
            + s.writes as f64 * cfg.write_energy
            + s.misses() as f64 * cfg.write_energy // line fill
            + s.writebacks as f64 * cfg.read_energy; // victim readout
        components.push(ComponentEnergy {
            name: cache.name.clone(),
            dynamic,
            leakage: cfg.leakage_power * t,
        });
        bus_transactions += s.misses() + s.writebacks;
    }

    // Interconnect.
    components.push(ComponentEnergy {
        name: "bus".into(),
        dynamic: bus_transactions as f64 * config.bus_energy_per_transaction,
        leakage: 0.01 * t, // 10 mW of clocked fabric
    });

    // Memory controller + DRAM. Row-buffer hits (when the model is on)
    // skip the activate cycle and cost a fraction of the full transaction.
    let dram_txn = report.dram_reads + report.dram_writes;
    let row_hits = report.dram_row_hits.min(dram_txn);
    let full = (dram_txn - row_hits) as f64;
    let cheap = row_hits as f64 * 0.4;
    components.push(ComponentEnergy {
        name: "memctrl".into(),
        dynamic: dram_txn as f64 * config.mc_energy_per_transaction,
        leakage: config.mc_leakage * t,
    });
    components.push(ComponentEnergy {
        name: "DRAM".into(),
        dynamic: (full + cheap) * config.dram_energy_per_transaction,
        leakage: config.dram_background_power * t,
    });

    PowerReport {
        label: report.kernel.clone(),
        runtime_seconds: t,
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_gemsim::system::{System, SystemConfig};
    use mss_gemsim::workload::Kernel;

    fn sim_report() -> SimReport {
        let mut cfg = SystemConfig::big_little_default();
        cfg.sample_accesses_per_thread = 5000;
        System::new(cfg)
            .unwrap()
            .run(&Kernel::bodytrack(), 1)
            .unwrap()
    }

    #[test]
    fn breakdown_has_all_components() {
        let report = evaluate(&McpatConfig::default(), &sim_report());
        for name in [
            "big cores",
            "LITTLE cores",
            "big.L2",
            "LITTLE.L2",
            "bus",
            "memctrl",
            "DRAM",
        ] {
            assert!(
                report.component(name).is_some(),
                "missing component {name}: {:?}",
                report
                    .components
                    .iter()
                    .map(|c| &c.name)
                    .collect::<Vec<_>>()
            );
        }
        assert!(report.total_energy() > 0.0);
        assert!(report.edp() > 0.0);
    }

    #[test]
    fn sram_l2_leakage_is_visible() {
        let report = evaluate(&McpatConfig::default(), &sim_report());
        let l2 = report.component("big.L2").unwrap();
        // SRAM L2 leakage is a significant share of its energy.
        assert!(l2.leakage > 0.2 * l2.total());
    }

    #[test]
    fn energy_scales_with_runtime_for_leakage() {
        let mut r = sim_report();
        let e1 = evaluate(&McpatConfig::default(), &r).total_energy();
        r.runtime_seconds *= 2.0;
        let e2 = evaluate(&McpatConfig::default(), &r).total_energy();
        assert!(e2 > e1);
    }

    #[test]
    fn big_cores_burn_more_than_little() {
        let report = evaluate(&McpatConfig::default(), &sim_report());
        let big = report.component("big cores").unwrap().total();
        let little = report.component("LITTLE cores").unwrap().total();
        assert!(big > little);
    }

    #[test]
    fn table_renders() {
        let report = evaluate(&McpatConfig::default(), &sim_report());
        let t = report.to_table();
        assert!(t.contains("TOTAL"));
        assert!(t.contains("DRAM"));
    }

    #[test]
    fn component_total_sums() {
        let c = ComponentEnergy {
            name: "x".into(),
            dynamic: 1.0,
            leakage: 2.0,
        };
        assert_eq!(c.total(), 3.0);
    }
}
