//! Cross-layer observability integration: drives one small workload through
//! each instrumented crate and asserts the global NDJSON run report carries
//! spans/counters from every layer.
//!
//! Runs in its own test binary so [`mss_obs::init_with_mode`] can pin the
//! global registry to `Metrics` before anything else touches it — no
//! environment variables involved, so the test is hermetic.

use mss_bench::standard_context;
use mss_exec::ParallelConfig;
use mss_gemsim::system::{System, SystemConfig};
use mss_gemsim::workload::Kernel;
use mss_mtj::llg::{LlgOptions, LlgSimulator};
use mss_mtj::switching::SwitchingModel;
use mss_mtj::{MssDevice, MssStack};
use mss_obs::Mode;
use mss_pdk::tech::TechNode;
use mss_units::Vec3;
use mss_vaet::montecarlo::{run_with, MonteCarloOptions};

#[test]
fn ndjson_report_covers_mtj_spice_vaet_and_gemsim() {
    assert!(
        mss_obs::init_with_mode(Mode::Metrics),
        "another test initialised the global registry first; keep this \
         test binary single-test"
    );

    // vaet Monte Carlo (drives spice.dc/transient internally via the
    // characterised context too).
    let ctx = standard_context(TechNode::N45);
    run_with(
        &ctx,
        &MonteCarloOptions {
            samples: 64,
            seed: 7,
            word_bits: Some(16),
        },
        &ParallelConfig::serial(),
    )
    .expect("vaet Monte Carlo");

    // mtj LLG: one short relaxation sweep.
    let device = MssDevice::memory(MssStack::builder().build().expect("stack"));
    let ic = SwitchingModel::new(device.stack()).critical_current();
    let sim = LlgSimulator::new(&device);
    sim.current_sweep(
        &[2.0 * ic],
        Vec3::from_spherical(3.0, 0.0),
        5e-9,
        0.0,
        &LlgOptions::default(),
        &ParallelConfig::serial(),
    );

    // gemsim: one tiny kernel.
    let mut cfg = SystemConfig::big_little_default();
    cfg.sample_accesses_per_thread = 2_000;
    System::new(cfg)
        .expect("system")
        .run(&Kernel::swaptions(), 3)
        .expect("kernel run");

    let report = mss_obs::report_ndjson();
    // Spans/counters from at least the four named crates.
    for needle in [
        "mtj.llg.", // device layer
        "spice.",   // circuit layer (solver/newton counters, dc/transient spans)
        "vaet.mc.", // variation-aware estimation
        "gemsim.",  // system simulation
    ] {
        assert!(
            report.contains(needle),
            "report missing {needle:?} entries:\n{report}"
        );
    }
    // Structural sanity: one meta line, every line a JSON object.
    let mut lines = report.lines();
    assert!(lines.next().unwrap_or("").contains("\"type\":\"meta\""));
    for line in report.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        assert!(line.contains("\"type\":"), "untyped line: {line}");
    }
    // The vaet run recorded its RunStats fold-in.
    assert!(mss_obs::global().counter("vaet.mc.samples") >= 64);
    assert!(mss_obs::global().counter("spice.solver.solves") > 0);
}
