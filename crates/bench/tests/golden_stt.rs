//! Golden regression for the default-STT path after the mechanism
//! refactor: rebuilding the committed figure exports from scratch (fresh
//! memory-only stage cache, so nothing replays) must reproduce
//! `results/fig11.csv` and `results/fig12.csv` **byte-identically** at 1,
//! 2 and 8 worker threads. The thread sweep is the determinism half of the
//! contract — the batched kernels must not let scheduling order leak into
//! the exported bytes. (The `BENCH_*` smoke outputs get the same treatment
//! in-bin: `spice_batch_smoke` asserts bitwise 1/2/8-thread parity itself,
//! and `mss_report check` pins its committed baseline in CI.)

use std::sync::Arc;

use mss_core::flow::{MagpieFlow, MagpieInputs};
use mss_core::scenario::Scenario;
use mss_exec::ParallelConfig;
use mss_gemsim::workload::Kernel;
use mss_pdk::tech::TechNode;
use mss_pipe::PipeCache;

const THREADS: [usize; 3] = [1, 2, 8];

fn golden(name: &str) -> String {
    let path = format!("{}/../../results/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read golden {path}: {e}"))
}

/// Runs the flow with a fresh (memory-only) cache so every stage actually
/// recomputes at the requested thread count.
fn run_cold(inputs: &MagpieInputs, threads: usize) -> mss_core::flow::MagpieReport {
    let flow = MagpieFlow::new_with_cache(inputs.clone(), Arc::new(PipeCache::memory_only()))
        .expect("flow setup");
    flow.run_with(&ParallelConfig::serial().with_threads(threads))
        .expect("flow run")
}

#[test]
fn fig11_csv_is_byte_identical_at_1_2_8_threads() {
    let inputs = MagpieInputs {
        node: TechNode::N45,
        kernels: vec![Kernel::bodytrack()],
        scenarios: Scenario::ALL.to_vec(),
        seed: 0x000F_1611,
        sample_cap: 250_000,
        ..MagpieInputs::defaults()
    };
    let golden = golden("fig11.csv");
    for threads in THREADS {
        let report = run_cold(&inputs, threads);
        assert_eq!(
            report.fig11_csv("bodytrack"),
            golden,
            "fig11.csv diverged from the committed golden at {threads} threads"
        );
    }
}

#[test]
fn fig12_csv_is_byte_identical_at_1_2_8_threads() {
    let inputs = MagpieInputs {
        node: TechNode::N45,
        kernels: Kernel::parsec_extended(),
        scenarios: Scenario::ALL.to_vec(),
        seed: 0x000F_1612,
        sample_cap: 250_000,
        ..MagpieInputs::defaults()
    };
    let golden = golden("fig12.csv");
    for threads in THREADS {
        let report = run_cold(&inputs, threads);
        assert_eq!(
            report.fig12_csv(),
            golden,
            "fig12.csv diverged from the committed golden at {threads} threads"
        );
    }
}
