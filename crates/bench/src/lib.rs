//! Experiment harnesses for every data-bearing table and figure of the
//! paper, plus shared helpers for the bench targets.
//!
//! Each experiment has a binary (`cargo run -p mss-bench --release --bin
//! <id>`) that prints the paper-style rows, and a bench group (in-tree
//! [`harness`], no Criterion) measuring the cost of regenerating it. The
//! mapping to the paper lives in `DESIGN.md` §4; measured-vs-paper numbers
//! are recorded in `EXPERIMENTS.md`.

#![deny(missing_docs)]

pub mod harness;

use mss_pdk::tech::TechNode;
use mss_vaet::context::VaetContext;

/// Builds the Table-1 standard context (1024×1024 array) for a node.
///
/// # Panics
///
/// Panics when the nominal flow fails — experiment binaries treat that as a
/// fatal setup error.
pub fn standard_context(node: TechNode) -> VaetContext {
    VaetContext::standard(node).expect("standard VAET context must build")
}

/// The error-rate targets swept in Fig. 7.
pub const FIG7_TARGETS: [f64; 3] = [1e-5, 1e-10, 1e-15];

/// The uncorrectable-error target of Fig. 8 ("WER of 1 × 10⁻¹⁸").
pub const FIG8_TARGET: f64 = 1e-18;

/// Read periods swept in Fig. 9 (seconds): sub-ns points show the RER
/// falling, the ns points show the disturb growing.
pub fn fig9_periods() -> Vec<f64> {
    vec![
        0.1e-9, 0.2e-9, 0.3e-9, 0.5e-9, 1e-9, 2e-9, 3e-9, 5e-9, 7e-9, 10e-9,
    ]
}

/// Renders a simple two-column series as text rows.
pub fn series_table(
    title: &str,
    x_label: &str,
    y_label: &str,
    rows: &[(String, String)],
) -> String {
    let mut out = format!("== {title} ==\n{x_label:<24} | {y_label}\n");
    for (x, y) in rows {
        out.push_str(&format!("{x:<24} | {y}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_consistent() {
        assert_eq!(FIG7_TARGETS.len(), 3);
        assert_eq!(fig9_periods().len(), 10);
        let t = series_table("t", "x", "y", &[("a".into(), "b".into())]);
        assert!(t.contains("== t =="));
        assert!(t.contains("a"));
    }
}
