//! Experiment harnesses for every data-bearing table and figure of the
//! paper, plus shared helpers for the bench targets.
//!
//! Each experiment has a binary (`cargo run -p mss-bench --release --bin
//! <id>`) that prints the paper-style rows, and a bench group (in-tree
//! [`harness`], no Criterion) measuring the cost of regenerating it. The
//! mapping to the paper lives in `DESIGN.md` §4; measured-vs-paper numbers
//! are recorded in `EXPERIMENTS.md`.

#![deny(missing_docs)]

pub mod harness;

use mss_mtj::{MssStack, SotParams};
use mss_nvsim::config::MemoryConfig;
use mss_pdk::tech::TechNode;
use mss_vaet::context::VaetContext;

/// Builds the Table-1 standard context (1024×1024 array) for a node.
///
/// # Panics
///
/// Panics when the nominal flow fails — experiment binaries treat that as a
/// fatal setup error.
pub fn standard_context(node: TechNode) -> VaetContext {
    VaetContext::standard(node).expect("standard VAET context must build")
}

/// The SOT twin of [`standard_context`]: the same 1024×1024 array on the
/// three-terminal SOT/SHE cell with the default β-W channel — the
/// mechanism comparison rows of the Table-1 experiment.
///
/// # Panics
///
/// Panics when the nominal flow fails — experiment binaries treat that as a
/// fatal setup error.
pub fn standard_sot_context(node: TechNode) -> VaetContext {
    let stack = MssStack::builder().build().expect("reference stack");
    let config = MemoryConfig::new(
        1024 * 1024 / 8,
        1024,
        1,
        1024,
        1024,
        mss_nvsim::config::MemoryKind::Ram,
    )
    .expect("standard array organisation");
    VaetContext::build_sot(node, stack, config, SotParams::default())
        .expect("standard SOT VAET context must build")
}

/// The error-rate targets swept in Fig. 7.
pub const FIG7_TARGETS: [f64; 3] = [1e-5, 1e-10, 1e-15];

/// The uncorrectable-error target of Fig. 8 ("WER of 1 × 10⁻¹⁸").
pub const FIG8_TARGET: f64 = 1e-18;

/// Read periods swept in Fig. 9 (seconds): sub-ns points show the RER
/// falling, the ns points show the disturb growing.
pub fn fig9_periods() -> Vec<f64> {
    vec![
        0.1e-9, 0.2e-9, 0.3e-9, 0.5e-9, 1e-9, 2e-9, 3e-9, 5e-9, 7e-9, 10e-9,
    ]
}

/// Writes the enabled observability registry as this bench's profiling
/// artifacts, and prints one status line per artifact:
///
/// - the NDJSON run report (`MSS_OBS_OUT`, default `target/<name>.ndjson`),
///   round-tripped through the `mss-prof` schema validator before it is
///   trusted — an emitter regression fails the smoke run, not a later
///   consumer,
/// - the structural `BENCH_<name>.json` baseline (`MSS_BENCH_BASELINE_OUT`,
///   default `target/BENCH_<name>.json`) for `mss_report check`,
/// - in trace mode, the Chrome trace (`target/<name>.trace.json`) loadable
///   in Perfetto / `chrome://tracing`.
///
/// No-op (with a hint) when observability is disabled.
///
/// # Panics
///
/// When the emitted report fails schema validation or an artifact cannot be
/// written — both are fatal infrastructure bugs for a smoke bench.
pub fn write_obs_artifacts(name: &str) {
    if !mss_obs::enabled() {
        println!("obs      : disabled (set MSS_METRICS=1 for an NDJSON run report)");
        return;
    }
    let write = |path: &str, content: &str| {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, content)
            .unwrap_or_else(|e| panic!("write profiling artifact {path}: {e}"));
    };

    let text = mss_obs::report_ndjson();
    let report = mss_prof::Report::parse_ndjson(&text)
        .unwrap_or_else(|e| panic!("emitted NDJSON failed schema validation: {e}"));
    let report_path =
        std::env::var("MSS_OBS_OUT").unwrap_or_else(|_| format!("target/{name}.ndjson"));
    write(&report_path, &text);
    println!(
        "obs      : {} NDJSON lines (schema v{}, validated) -> {report_path}",
        text.lines().count(),
        report.meta.schema
    );

    let baseline_path = std::env::var("MSS_BENCH_BASELINE_OUT")
        .unwrap_or_else(|_| format!("target/BENCH_{name}.json"));
    let baseline = mss_prof::Baseline::from_report(name, &report);
    write(&baseline_path, &baseline.to_json());
    println!(
        "baseline : {} counters, {} spans -> {baseline_path}",
        baseline.counters.len(),
        baseline.spans.len()
    );

    if !report.events.is_empty() {
        let trace_path = format!("target/{name}.trace.json");
        let trace = mss_prof::chrome_trace(&report).expect("events present, export must succeed");
        write(&trace_path, &trace);
        println!(
            "trace    : {} events ({} dropped) -> {trace_path} (load in Perfetto)",
            report.events.len(),
            report.meta.dropped_events
        );
    }

    run_watchdog(name, &report);
}

/// The runtime perf watchdog leg of [`write_obs_artifacts`]: under
/// `MSS_WATCHDOG`, the just-finished run's span means are compared against
/// the committed `results/BENCH_<name>.json` baseline with the live
/// (ratio-over-noise-floor) policy. Regressions are surfaced as
/// `watchdog.regression` counters, `watchdog` bus events and stderr lines;
/// `MSS_WATCHDOG=strict` turns them into a hard smoke failure. Absent
/// baseline or `MSS_WATCHDOG` unset: silent no-op.
fn run_watchdog(name: &str, report: &mss_prof::Report) {
    let mode = mss_prof::WatchdogMode::from_env();
    if mode == mss_prof::WatchdogMode::Off {
        return;
    }
    let baseline_path = std::path::PathBuf::from(format!("results/BENCH_{name}.json"));
    if !baseline_path.exists() {
        println!(
            "watchdog : no committed baseline at {} (skipped)",
            baseline_path.display()
        );
        return;
    }
    let wd = mss_prof::Watchdog::from_baseline_file(&baseline_path)
        .unwrap_or_else(|e| panic!("watchdog baseline: {e}"));
    let regressions = wd.check_report(report);
    let gate = mss_prof::watchdog::surface(mode, &regressions);
    println!(
        "watchdog : {} span(s) checked against {}, {} regression(s){}",
        wd.baseline().spans.len(),
        baseline_path.display(),
        regressions.len(),
        if gate { " [strict: failing]" } else { "" }
    );
    if gate {
        eprintln!("watchdog: MSS_WATCHDOG=strict and spans regressed; failing the run");
        std::process::exit(1);
    }
}

/// Renders a simple two-column series as text rows.
pub fn series_table(
    title: &str,
    x_label: &str,
    y_label: &str,
    rows: &[(String, String)],
) -> String {
    let mut out = format!("== {title} ==\n{x_label:<24} | {y_label}\n");
    for (x, y) in rows {
        out.push_str(&format!("{x:<24} | {y}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_consistent() {
        assert_eq!(FIG7_TARGETS.len(), 3);
        assert_eq!(fig9_periods().len(), 10);
        let t = series_table("t", "x", "y", &[("a".into(), "b".into())]);
        assert!(t.contains("== t =="));
        assert!(t.contains("a"));
    }
}
