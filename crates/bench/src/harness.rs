//! Minimal wall-clock micro-bench harness.
//!
//! A zero-dependency stand-in for Criterion: each benchmark warms up, then
//! runs until a time budget (or iteration cap) is met, and reports
//! mean/min/max per-iteration wall time. Used by the `benches/*.rs` targets
//! (`harness = false`) so `cargo bench` works with no registry access.
//!
//! Tuning knobs (environment):
//!
//! - `MSS_BENCH_BUDGET_MS` — per-benchmark measurement budget in
//!   milliseconds (default 300),
//! - `MSS_BENCH_MAX_ITERS` — iteration cap within the budget (default 50).

use std::time::{Duration, Instant};

/// Per-benchmark measurement budget.
fn budget() -> Duration {
    let ms = std::env::var("MSS_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// Iteration cap within the budget.
fn max_iters() -> u64 {
    std::env::var("MSS_BENCH_MAX_ITERS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(50)
}

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (`group/function`).
    pub name: String,
    /// Measured iterations.
    pub iters: u64,
    /// Mean per-iteration wall time.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} {:>12} {:>12} {:>12} {:>6}",
            self.name,
            format_duration(self.mean),
            format_duration(self.min),
            format_duration(self.max),
            self.iters
        )
    }
}

/// Renders a duration with an adaptive unit (ns/µs/ms/s).
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Collects and prints benchmark results for one bench target.
#[derive(Debug, Default)]
pub struct Harness {
    results: Vec<BenchResult>,
}

impl Harness {
    /// An empty harness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` (after a warm-up pass) and records the result.
    ///
    /// The closure's return value is passed through [`std::hint::black_box`]
    /// so the computation cannot be optimised away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        // Warm-up: one untimed pass (fills caches, triggers lazy init).
        std::hint::black_box(f());
        let budget = budget();
        let cap = max_iters();
        let mut times = Vec::new();
        let started = Instant::now();
        while (times.len() as u64) < cap && (times.is_empty() || started.elapsed() < budget) {
            let t0 = Instant::now();
            std::hint::black_box(f());
            times.push(t0.elapsed());
        }
        let iters = times.len() as u64;
        let total: Duration = times.iter().sum();
        let result = BenchResult {
            name: name.to_string(),
            iters,
            mean: total / iters as u32,
            min: times.iter().min().copied().unwrap_or_default(),
            max: times.iter().max().copied().unwrap_or_default(),
        };
        println!("{result}");
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All recorded results.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the header row; call once before the first `bench`.
    pub fn print_header(title: &str) {
        println!("== {title} ==");
        println!(
            "{:<44} {:>12} {:>12} {:>12} {:>6}",
            "benchmark", "mean", "min", "max", "iters"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_positive_times() {
        let mut h = Harness::new();
        let r = h.bench("smoke/sum", || (0..1000u64).sum::<u64>());
        assert!(r.iters >= 1);
        assert!(r.mean >= r.min);
        assert!(r.max >= r.mean);
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert!(format_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
