//! E-M1..E-M3 — characterises the three MSS operating modes described in
//! the paper's Sec. I/II prose: memory retention vs diameter, the sensor's
//! linear transfer curve and the oscillator's tilt/frequency behaviour.

use mss_mtj::llg::{LlgOptions, LlgSimulator};
use mss_mtj::reliability;
use mss_mtj::switching::SwitchingModel;
use mss_mtj::{MssDevice, MssStack};
use mss_units::consts::am_to_oe;
use mss_units::fmt::Eng;
use mss_units::Vec3;

fn main() {
    let base = MssStack::builder().build().expect("default stack");

    // --- E-M1: memory mode — retention vs diameter, switching current ---
    println!("E-M1: memory mode — adjustable retention by pillar diameter");
    println!(
        "{:<12} | {:>10} | {:>16} | {:>14}",
        "diameter", "delta", "retention", "Ic0"
    );
    for d_nm in [25.0, 30.0, 35.0, 40.0, 50.0] {
        let stack = base.with_diameter(d_nm * 1e-9).expect("geometry");
        let years = reliability::retention_years(&stack);
        println!(
            "{:<12} | {:>10.1} | {:>13.2e} y | {:>14}",
            format!("{d_nm} nm"),
            stack.thermal_stability(),
            years,
            Eng(stack.critical_current(), "A").to_string()
        );
    }
    let sw = SwitchingModel::new(&base);
    println!(
        "mean switching time at 2.5x Ic0: {}\n",
        Eng(
            sw.mean_switching_time(2.5 * sw.critical_current())
                .expect("supercritical"),
            "s"
        )
    );

    // --- E-M2: sensor mode — linear transfer curve ---
    let sensor = MssDevice::sensor(base.clone()).expect("sensor bias");
    println!(
        "E-M2: sensor mode — bias {:.0} Oe pulls the free layer in-plane",
        sensor.bias().field_oe()
    );
    println!("{:<14} | {:>12} | {:>12}", "H_z (Oe)", "m_z", "R (ohm)");
    let range = sensor.sensor_linear_range();
    for k in -4i32..=4 {
        let h = k as f64 / 4.0 * 0.8 * range;
        let mz = sensor.equilibrium_mz(h).expect("equilibrium");
        let r = sensor.sensor_resistance(h, 0.05).expect("transfer");
        println!("{:<14.1} | {:>12.4} | {:>12.1}", am_to_oe(h), mz, r);
    }
    println!(
        "sensitivity dR/dH: {:.4} ohm/Oe, linear range ±{:.0} Oe\n",
        sensor.sensor_sensitivity().expect("sensitivity") * mss_units::consts::oe_to_am(1.0),
        am_to_oe(range)
    );

    // --- E-M3: oscillator mode — tilt and frequency ---
    let osc = MssDevice::oscillator(base);
    println!(
        "E-M3: oscillator mode — bias {:.0} Oe (Hk/2) tilts the free layer to {:.1} deg",
        osc.bias().field_oe(),
        osc.equilibrium_tilt_degrees()
    );
    println!(
        "analytic free-running frequency estimate: {}",
        Eng(osc.oscillator_frequency_estimate(), "Hz")
    );
    // Ring-down LLG run to confirm the precession frequency physically.
    let theta = osc.equilibrium_tilt_degrees().to_radians();
    let sim = LlgSimulator::new(&osc);
    let traj = sim.run(
        Vec3::from_spherical(theta + 0.15, 0.1),
        4e-9,
        &LlgOptions {
            record_every: 1,
            ..LlgOptions::default()
        },
    );
    match traj.estimate_frequency() {
        Some(f) => println!("LLG ring-down frequency: {}", Eng(f, "Hz")),
        None => println!("LLG ring-down frequency: (no oscillation detected)"),
    }
}
