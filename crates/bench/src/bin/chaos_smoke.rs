//! CI chaos harness for the fault-tolerant sweep supervisor: injected
//! panics, errors, stalls, poisoned disk-cache entries, and an interrupted
//! flow sweep — proving that no injected failure aborts the process, that
//! surviving tasks stay bit-identical to an uninjected run at any thread
//! count, and that a resumed sweep recomputes zero cached stages.
//!
//! ```text
//! cargo run --release -p mss-bench --bin chaos_smoke
//! MSS_METRICS=1 cargo run --release -p mss-bench --bin chaos_smoke -- 20000 9
//! ```
//!
//! Optional arguments: sample cap for the gemsim legs (default 20 000) and
//! chaos seed (default 9). The failure manifests collected from the
//! no-retry and deadline legs are written to
//! `target/chaos_smoke_manifest.ndjson` for CI to archive. Exits non-zero
//! on any isolation, determinism, or resume violation.

use std::sync::Arc;
use std::time::Duration;

use mss_core::flow::{MagpieFlow, MagpieInputs};
use mss_core::scenario::Scenario;
use mss_exec::supervise::{PartialSweep, SupervisorConfig};
use mss_exec::ParallelConfig;
use mss_fault::chaos::{poison_cache_dir, ChaosPlan, PANIC_TAG};
use mss_gemsim::stats::SimReport;
use mss_gemsim::system::{Placement, System, SystemConfig};
use mss_gemsim::workload::Kernel;
use mss_pdk::tech::TechNode;
use mss_pipe::checkpoint::SweepJournal;
use mss_pipe::{PipeCache, Stage};

/// Silences the default panic report for chaos-injected panics (they are
/// the point of the harness) while leaving real panics fully reported.
fn install_panic_filter() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !message.contains(PANIC_TAG) {
            default(info);
        }
    }));
}

fn threads(n: usize) -> ParallelConfig {
    ParallelConfig::serial().with_threads(n)
}

/// Runs the kernel sweep under the supervisor with `plan` injecting chaos
/// at the head of every task attempt.
fn chaotic_sweep(
    sys: &System,
    kernels: &[Kernel],
    seed: u64,
    plan: &ChaosPlan,
    exec: &ParallelConfig,
    sup: &SupervisorConfig,
) -> PartialSweep<SimReport> {
    mss_exec::supervised_map(exec, sup, kernels, |ctx, kernel| {
        plan.injure(ctx.index as u64, ctx.attempt)?;
        sys.run_cancellable(kernel, seed, &Placement::AllClusters, ctx.token())
            .map_err(|e| e.to_string())
    })
}

/// Leg 1: panics and errors on early attempts, bounded retry — the sweep
/// must complete bit-identically to the uninjected baseline at 1/2/8
/// threads.
fn retry_convergence_leg(
    sys: &System,
    kernels: &[Kernel],
    seed: u64,
    chaos_seed: u64,
    baseline: &[SimReport],
) {
    let _span = mss_obs::span("chaos_smoke.retry");
    let plan = ChaosPlan::new(chaos_seed)
        .with_panic_rate(0.35)
        .with_fail_rate(0.35)
        .with_max_faulty_attempts(2);
    let injected = (0..kernels.len() as u64)
        .flat_map(|t| (0..2).map(move |a| (t, a)))
        .filter(|&(t, a)| plan.should_panic(t, a) || plan.should_fail(t, a))
        .count();
    assert!(
        injected > 0,
        "chaos seed {chaos_seed} injects nothing; pick another seed"
    );
    // max_faulty_attempts = 2 means attempt 2 is guaranteed clean, so two
    // retries always converge — and the supervised results must be the
    // uninjected ones bit-for-bit, because results never depend on attempt.
    let sup = SupervisorConfig::disabled()
        .with_retry_max(2)
        .with_seed(chaos_seed)
        .with_label("chaos.retry");
    for n in [1usize, 2, 8] {
        let sweep = chaotic_sweep(sys, kernels, seed, &plan, &threads(n), &sup);
        assert!(
            sweep.is_complete(),
            "injected sweep failed to converge at {n} threads:\n{}",
            sweep.failure_manifest()
        );
        for (i, result) in sweep.completed() {
            assert_eq!(
                result, &baseline[i],
                "retried task {i} diverged from the uninjected run at {n} threads"
            );
        }
    }
    println!(
        "retry    : {injected} faulty attempts over {} tasks | retry_max 2 | complete and bit-identical at 1/2/8 threads",
        kernels.len()
    );
}

/// Leg 2: the same chaos with no retry budget — failures must be isolated
/// to their own tasks and every survivor must equal the baseline.
fn isolation_leg(
    sys: &System,
    kernels: &[Kernel],
    seed: u64,
    chaos_seed: u64,
    baseline: &[SimReport],
) -> String {
    let _span = mss_obs::span("chaos_smoke.isolate");
    let plan = ChaosPlan::new(chaos_seed)
        .with_panic_rate(0.35)
        .with_fail_rate(0.35)
        .with_max_faulty_attempts(2);
    let doomed: Vec<u64> = (0..kernels.len() as u64)
        .filter(|&t| plan.should_panic(t, 0) || plan.should_fail(t, 0))
        .collect();
    assert!(
        !doomed.is_empty(),
        "chaos seed {chaos_seed} dooms no task at attempt 0; pick another seed"
    );
    let sup = SupervisorConfig::disabled()
        .with_seed(chaos_seed)
        .with_label("chaos.isolate");
    let mut manifest = String::new();
    for n in [1usize, 2, 8] {
        let sweep = chaotic_sweep(sys, kernels, seed, &plan, &threads(n), &sup);
        let failed: Vec<u64> = sweep.failures.iter().map(|f| f.index as u64).collect();
        assert_eq!(
            failed, doomed,
            "failure set at {n} threads diverged from the plan's attempt-0 dooms"
        );
        for (i, result) in sweep.completed() {
            assert_eq!(
                result, &baseline[i],
                "survivor {i} was corrupted by a neighbour's failure at {n} threads"
            );
        }
        if n == 1 {
            manifest = sweep.failure_manifest();
        }
    }
    println!(
        "isolate  : {}/{} tasks doomed with retry_max 0 | survivors bit-identical at 1/2/8 threads",
        doomed.len(),
        kernels.len()
    );
    manifest
}

/// Leg 3: every task stalls past its deadline — all must be classified
/// deadline-exceeded, none retried, and the process must sail on.
fn deadline_leg(sys: &System, kernels: &[Kernel], seed: u64, chaos_seed: u64) -> String {
    let _span = mss_obs::span("chaos_smoke.deadline");
    let plan = ChaosPlan::new(chaos_seed).with_stall(1.0, Duration::from_millis(120));
    let sup = SupervisorConfig::disabled()
        .with_deadline(Duration::from_millis(20))
        .with_retry_max(3)
        .with_seed(chaos_seed)
        .with_label("chaos.deadline");
    let sweep = chaotic_sweep(sys, kernels, seed, &plan, &threads(4), &sup);
    assert_eq!(
        sweep.failures.len(),
        kernels.len(),
        "a universally stalled sweep completed tasks somehow"
    );
    for f in &sweep.failures {
        assert_eq!(
            f.kind.tag(),
            "deadline-exceeded",
            "stalled task {} classified as {} instead of deadline-exceeded",
            f.index,
            f.kind
        );
        assert_eq!(
            f.attempts, 1,
            "deadline failures must be terminal, task {} was retried",
            f.index
        );
    }
    println!(
        "deadline : {} tasks stalled 120 ms against a 20 ms budget | all deadline-exceeded, none retried, no abort",
        kernels.len()
    );
    sweep.failure_manifest()
}

/// Leg 4: a damaged on-disk cache must degrade to recomputes that produce
/// byte-identical figures, never an error or a corrupted report.
fn poison_leg(sample_cap: u64, chaos_seed: u64) {
    let _span = mss_obs::span("chaos_smoke.poison");
    let dir = std::env::temp_dir().join(format!("mss-chaos-poison-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let inputs = MagpieInputs {
        node: TechNode::N45,
        kernels: vec![Kernel::bodytrack(), Kernel::streamcluster()],
        scenarios: Scenario::ALL.to_vec(),
        seed: 7,
        sample_cap,
        ..MagpieInputs::defaults()
    };
    let cold_flow =
        MagpieFlow::new_with_cache(inputs.clone(), Arc::new(PipeCache::with_disk(&dir)))
            .expect("cold flow");
    let cold = cold_flow.run().expect("cold run");

    let poisoned = poison_cache_dir(&dir, chaos_seed, 0.6).expect("poison cache dir");
    assert!(poisoned > 0, "poisoning selected no cache entries");

    let warm_cache = Arc::new(PipeCache::with_disk(&dir));
    let warm_flow =
        MagpieFlow::new_with_cache(inputs, warm_cache.clone()).expect("poisoned-cache flow");
    let warm = warm_flow.run().expect("poisoned-cache run");
    assert_eq!(
        warm.fig12_csv(),
        cold.fig12_csv(),
        "poisoned cache changed the figures"
    );
    let load_failures: u64 = Stage::ALL
        .iter()
        .map(|&s| warm_cache.stats(s).load_failures)
        .sum();
    assert!(
        load_failures > 0,
        "poisoned entries were never even inspected"
    );
    println!(
        "poison   : {poisoned} disk entries truncated | {load_failures} load failures degraded to recomputes | figures byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Leg 5: a sweep interrupted after finishing part of the grid resumes
/// from the disk tier and the checkpoint journal without recomputing any
/// completed stage.
fn resume_leg(sample_cap: u64) {
    let _span = mss_obs::span("chaos_smoke.resume");
    let dir = std::env::temp_dir().join(format!("mss-chaos-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let journal_path = dir.join("sweep.ndjson");
    let kernels = vec![Kernel::bodytrack(), Kernel::streamcluster()];
    let before = MagpieInputs {
        node: TechNode::N45,
        kernels: kernels.clone(),
        scenarios: vec![Scenario::FullSram, Scenario::LittleL2Stt],
        seed: 7,
        sample_cap,
        ..MagpieInputs::defaults()
    };
    let after = MagpieInputs {
        node: TechNode::N45,
        kernels,
        scenarios: Scenario::ALL.to_vec(),
        seed: 7,
        sample_cap,
        ..MagpieInputs::defaults()
    };

    // "Before the kill": half the scenario grid completes and checkpoints.
    let flow_a = MagpieFlow::new_with_cache(before, Arc::new(PipeCache::with_disk(&dir)))
        .expect("pre-kill flow");
    let digest_a = flow_a.sweep_digest();
    let mut journal_a = SweepJournal::open(&journal_path, &digest_a).expect("open journal");
    let partial = flow_a
        .run_supervised_journaled(&threads(4), &SupervisorConfig::disabled(), &mut journal_a)
        .expect("pre-kill sweep");
    assert!(partial.is_complete());
    let done_before = journal_a.done().count();
    assert_eq!(done_before, 4, "2 kernels x 2 scenarios checkpoint 4 pairs");

    // "After the restart": fresh caches and journals, full scenario grid.
    // The four pairs that completed before the kill share their simulate
    // keys with the full sweep, so they must come back as disk hits —
    // zero recomputed stages.
    let cache_b = Arc::new(PipeCache::with_disk(&dir));
    let flow_b = MagpieFlow::new_with_cache(after, cache_b.clone()).expect("post-restart flow");
    let digest_b = flow_b.sweep_digest();
    assert_ne!(digest_a, digest_b, "different grids must not share digests");
    let mut journal_b = SweepJournal::open(&journal_path, &digest_b).expect("reopen journal");
    assert!(
        journal_b.is_empty(),
        "the full sweep's journal view aliased the half sweep's records"
    );
    let resumed = flow_b
        .run_supervised_journaled(&threads(4), &SupervisorConfig::disabled(), &mut journal_b)
        .expect("resumed sweep");
    assert!(resumed.is_complete(), "{}", resumed.failure_manifest());
    assert_eq!(resumed.report.results.len(), 8);
    let sim = cache_b.stats(Stage::SimulateKernel);
    assert_eq!(
        (sim.disk_hits, sim.misses),
        (4, 4),
        "resume recomputed checkpointed stages: {sim:?}"
    );
    // The pre-kill manifest survives the restart unaliased.
    let replayed = SweepJournal::open(&journal_path, &digest_a).expect("replay journal");
    assert_eq!(replayed.done().count(), done_before);
    println!(
        "resume   : 4 pairs checkpointed pre-kill | resumed 8-pair sweep: 4 disk hits, 4 misses — zero cached stages recomputed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let sample_cap: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let chaos_seed: u64 = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    println!(
        "== chaos_smoke: supervised sweeps under injected panics, stalls, and disk damage (seed {chaos_seed}) =="
    );
    install_panic_filter();

    let mut cfg = SystemConfig::big_little_default();
    cfg.sample_accesses_per_thread = sample_cap;
    let sys = System::new(cfg).expect("system");
    let kernels = [
        Kernel::bodytrack(),
        Kernel::streamcluster(),
        Kernel::fluidanimate(),
        Kernel::freqmine(),
        Kernel::blackscholes(),
        Kernel::swaptions(),
    ];
    let seed = 0xC4A05;
    let baseline = sys
        .run_many(&kernels, seed, &threads(1))
        .expect("uninjected baseline");

    retry_convergence_leg(&sys, &kernels, seed, chaos_seed, &baseline);
    let mut manifest = isolation_leg(&sys, &kernels, seed, chaos_seed, &baseline);
    manifest.push_str(&deadline_leg(&sys, &kernels, seed, chaos_seed));
    poison_leg(sample_cap.max(20_000), chaos_seed);
    resume_leg(sample_cap.max(20_000));

    let manifest_path = "target/chaos_smoke_manifest.ndjson";
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write(manifest_path, &manifest).expect("write failure manifest");
    println!(
        "manifest : {} failure lines -> {manifest_path}",
        manifest.lines().count()
    );

    mss_bench::write_obs_artifacts("chaos_smoke");
}
