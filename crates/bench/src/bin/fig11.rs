//! E-F11 — regenerates the paper's **Fig. 11**: energy breakdown by
//! component when executing the bodytrack kernel on the big.LITTLE
//! architecture, across the four SRAM/STT-MRAM L2 scenarios — then reruns
//! the grid with the three SOT-MRAM twins added, printing the breakdown
//! side by side as an STT-vs-SOT mechanism comparison.
//!
//! Outputs: `results/fig11.csv` (the paper grid, byte-identical to the
//! historic export), `results/fig11_sot.csv` (the extended grid) and
//! `results/fig11.meta.csv` (figure metadata, including the
//! `extrapolated_accesses` fidelity marker — 0 here, the flow is exact).

use mss_core::flow::{MagpieFlow, MagpieInputs};
use mss_core::scenario::Scenario;
use mss_gemsim::workload::Kernel;
use mss_pdk::tech::TechNode;

fn main() {
    let inputs = MagpieInputs {
        node: TechNode::N45,
        kernels: vec![Kernel::bodytrack()],
        scenarios: Scenario::ALL.to_vec(),
        seed: 0x000F_1611,
        sample_cap: 250_000,
        ..MagpieInputs::defaults()
    };
    let flow = MagpieFlow::new(inputs.clone()).expect("flow setup");
    let report = flow.run().expect("flow run");
    println!("{}", report.fig11_table("bodytrack"));
    println!("{}", report.fig10_summary("bodytrack"));
    std::fs::create_dir_all("results").ok();
    if std::fs::write("results/fig11.csv", report.fig11_csv("bodytrack")).is_ok() {
        println!("(breakdown written to results/fig11.csv)");
    }
    // Overall savings vs the reference.
    for s in [
        Scenario::LittleL2Stt,
        Scenario::BigL2Stt,
        Scenario::FullL2Stt,
    ] {
        if let Some((_, e, _)) = report.normalized("bodytrack", s) {
            println!("{s}: total energy {:.1}% vs Full-SRAM", (e - 1.0) * 100.0);
        }
    }

    // The STT-vs-SOT rerun: same kernels/seed/cap with the SOT twins added
    // to the grid. The process-global stage cache makes the four paper
    // scenarios pure hits — only the SOT pairs actually simulate.
    let sot_flow = MagpieFlow::new(MagpieInputs {
        scenarios: Scenario::ALL_WITH_SOT.to_vec(),
        ..inputs
    })
    .expect("SOT flow setup");
    let sot_report = sot_flow.run().expect("SOT flow run");
    println!("{}", sot_report.fig11_table("bodytrack"));
    println!("{}", sot_report.mechanism_comparison_table());
    if std::fs::write("results/fig11_sot.csv", sot_report.fig11_csv("bodytrack")).is_ok() {
        println!("(extended breakdown written to results/fig11_sot.csv)");
    }
    if std::fs::write("results/fig11.meta.csv", sot_report.metadata_csv("fig11")).is_ok() {
        println!("(figure metadata written to results/fig11.meta.csv)");
    }
}
