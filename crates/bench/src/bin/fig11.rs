//! E-F11 — regenerates the paper's **Fig. 11**: energy breakdown by
//! component when executing the bodytrack kernel on the big.LITTLE
//! architecture, across the four SRAM/STT-MRAM L2 scenarios.

use mss_core::flow::{MagpieFlow, MagpieInputs};
use mss_core::scenario::Scenario;
use mss_gemsim::workload::Kernel;
use mss_pdk::tech::TechNode;

fn main() {
    let flow = MagpieFlow::new(MagpieInputs {
        node: TechNode::N45,
        kernels: vec![Kernel::bodytrack()],
        scenarios: Scenario::ALL.to_vec(),
        seed: 0x000F_1611,
        sample_cap: 250_000,
    })
    .expect("flow setup");
    let report = flow.run().expect("flow run");
    println!("{}", report.fig11_table("bodytrack"));
    println!("{}", report.fig10_summary("bodytrack"));
    std::fs::create_dir_all("results").ok();
    if std::fs::write("results/fig11.csv", report.fig11_csv("bodytrack")).is_ok() {
        println!("(breakdown written to results/fig11.csv)");
    }
    // Overall savings vs the reference.
    for s in [
        Scenario::LittleL2Stt,
        Scenario::BigL2Stt,
        Scenario::FullL2Stt,
    ] {
        if let Some((_, e, _)) = report.normalized("bodytrack", s) {
            println!("{s}: total energy {:.1}% vs Full-SRAM", (e - 1.0) * 100.0);
        }
    }
}
