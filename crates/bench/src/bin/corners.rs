//! Corner-based signoff sweep: characterises the 1T-1MTJ cell at the five
//! classic process corners next to the statistical (VAET) flow.

use mss_mtj::MssStack;
use mss_pdk::charlib::characterize_corners;
use mss_pdk::tech::TechNode;
use mss_units::fmt::Eng;

fn main() {
    let stack = MssStack::builder().build().expect("default stack");
    for node in TechNode::ALL {
        println!("process-corner characterisation at {node}:");
        println!(
            "{:>6} | {:>12} | {:>14} | {:>14} | {:>12}",
            "corner", "access W", "write latency", "write energy", "read latency"
        );
        let libs = characterize_corners(node, &stack).expect("corner sweep");
        for (corner, lib) in &libs {
            println!(
                "{:>6} | {:>12} | {:>14} | {:>14} | {:>12}",
                corner.to_string(),
                Eng(lib.access_width, "m").to_string(),
                Eng(lib.write.latency, "s").to_string(),
                Eng(lib.write.energy, "J").to_string(),
                Eng(lib.read.latency, "s").to_string()
            );
        }
        println!();
    }
}
