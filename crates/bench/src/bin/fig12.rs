//! E-F12 — regenerates the paper's **Fig. 12**: per-kernel execution time,
//! energy and EDP of the three STT-MRAM L2 scenarios relative to Full-SRAM,
//! for the nine Parsec-like kernels at 45 nm — then reruns the grid with
//! the three SOT-MRAM twins added and emits the STT-vs-SOT comparison.
//!
//! Outputs: `results/fig12.csv` (the paper grid, byte-identical to the
//! historic export), `results/fig12_sot.csv` (the per-replacement
//! STT-vs-SOT merit pairs) and `results/fig12.meta.csv` (figure metadata,
//! including the `extrapolated_accesses` fidelity marker).

use mss_core::flow::{MagpieFlow, MagpieInputs};
use mss_core::scenario::Scenario;
use mss_gemsim::workload::Kernel;
use mss_pdk::tech::TechNode;

fn main() {
    let inputs = MagpieInputs {
        node: TechNode::N45,
        kernels: Kernel::parsec_extended(),
        scenarios: Scenario::ALL.to_vec(),
        seed: 0x000F_1612,
        sample_cap: 250_000,
        ..MagpieInputs::defaults()
    };
    let flow = MagpieFlow::new(inputs.clone()).expect("flow setup");
    let report = flow.run().expect("flow run");
    println!("{}", report.fig12_table());
    std::fs::create_dir_all("results").ok();
    if std::fs::write("results/fig12.csv", report.fig12_csv()).is_ok() {
        println!("(series written to results/fig12.csv)");
    }

    // Headline shapes the paper calls out.
    let mut best_little_speedup: f64 = 1.0;
    let mut worst_energy: f64 = 0.0;
    for kernel in report.kernels() {
        if let Some((t, _, _)) = report.normalized(&kernel, Scenario::LittleL2Stt) {
            best_little_speedup = best_little_speedup.min(t);
        }
        for s in [
            Scenario::LittleL2Stt,
            Scenario::BigL2Stt,
            Scenario::FullL2Stt,
        ] {
            if let Some((_, e, _)) = report.normalized(&kernel, s) {
                worst_energy = worst_energy.max(e);
            }
        }
    }
    println!(
        "best LITTLE-L2-STT execution-time ratio: {best_little_speedup:.3} (paper: down to ~0.5)"
    );
    println!(
        "worst-case STT energy ratio across kernels/scenarios: {worst_energy:.3} (paper: <= ~0.83)"
    );

    // The STT-vs-SOT rerun: the SOT twins join the grid; the shared stage
    // cache replays the paper scenarios, so only SOT pairs simulate.
    let sot_flow = MagpieFlow::new(MagpieInputs {
        scenarios: Scenario::ALL_WITH_SOT.to_vec(),
        ..inputs
    })
    .expect("SOT flow setup");
    let sot_report = sot_flow.run().expect("SOT flow run");
    println!("{}", sot_report.mechanism_comparison_table());
    if std::fs::write(
        "results/fig12_sot.csv",
        sot_report.mechanism_comparison_csv(),
    )
    .is_ok()
    {
        println!("(mechanism comparison written to results/fig12_sot.csv)");
    }
    if std::fs::write("results/fig12.meta.csv", sot_report.metadata_csv("fig12")).is_ok() {
        println!("(figure metadata written to results/fig12.meta.csv)");
    }

    // Headline of the comparison: the big-L2 replacement flips from STT's
    // write-latency slowdown to a near-SRAM runtime under SOT.
    let mut best_gain: f64 = 0.0;
    for row in sot_report.mechanism_comparison() {
        best_gain = best_gain.max(row.edp_gain());
    }
    println!("best SOT-over-STT EDP gain across kernels/replacements: {best_gain:.3}");
}
