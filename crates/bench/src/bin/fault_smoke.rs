//! CI smoke benchmark for the fault-injection plane: a seeded ECC campaign
//! cross-validated against the analytical binomial model, a solver retry
//! ladder exercise, and a fault-aware gemsim run — printing a summary and,
//! when `MSS_METRICS=1` or `MSS_TRACE=1`, writing the observability
//! registry as an NDJSON run report CI archives.
//!
//! ```text
//! cargo run --release -p mss-bench --bin fault_smoke
//! MSS_METRICS=1 MSS_THREADS=8 cargo run --release -p mss-bench --bin fault_smoke -- 20000
//! ```
//!
//! The optional argument overrides the campaign block count (default 8000).
//! `MSS_OBS_OUT` overrides the report path (default
//! `target/fault_smoke.ndjson`). Exits non-zero if the empirical rates land
//! outside 4σ of the analytical model or determinism is violated.

use mss_exec::ParallelConfig;
use mss_fault::{run_ecc_campaign, CampaignOptions, FaultModel, FaultPlan, MtjOperatingPoint};
use mss_gemsim::faultmem::FaultMemConfig;
use mss_gemsim::system::{System, SystemConfig};
use mss_gemsim::workload::Kernel;
use mss_mtj::MssStack;
use mss_spice::analysis::{dc_operating_point_with, SolverOptions};
use mss_spice::mosfet::{MosGeometry, MosModel};
use mss_spice::netlist::Netlist;
use mss_spice::waveform::Waveform;
use mss_vaet::ecc::EccScheme;

/// The campaign leg: MTJ-derived rates, serial vs parallel bit-identity,
/// and 4σ agreement with the analytical binomial ECC model.
fn campaign_smoke(blocks: u64) {
    let _span = mss_obs::span("fault_smoke.campaign");
    let stack = MssStack::builder().build().expect("reference stack");
    // Derive WER/RER from the analytical device models at a deliberately
    // stressed operating point so the campaign actually sees failures.
    let mut op = MtjOperatingPoint::memory_defaults(&stack);
    op.write_current *= 0.9; // starved write driver
    op.stuck_at_rate = 2e-4;
    let model = FaultModel::from_mtj(&stack, &op).expect("derived model");
    let plan = FaultPlan::new(0xFA_017, model).expect("valid plan");
    let scheme = EccScheme::bch(2, 256);

    let serial = run_ecc_campaign(
        &plan,
        &CampaignOptions::new(blocks, scheme).with_parallel(ParallelConfig::serial()),
    )
    .expect("serial campaign");
    let parallel = run_ecc_campaign(
        &plan,
        &CampaignOptions::new(blocks, scheme).with_parallel(ParallelConfig::from_env()),
    )
    .expect("parallel campaign");
    assert_eq!(
        serial, parallel,
        "determinism violation: parallel campaign diverged from serial"
    );
    println!(
        "campaign : {blocks} blocks of {} bits | WER {:.2e} | bit errors {} | clean/corr/det/unc = {}/{}/{}/{}",
        serial.bits_per_block,
        model.write_fail_rate,
        serial.bit_errors,
        serial.blocks_clean,
        serial.blocks_corrected,
        serial.blocks_detected,
        serial.blocks_uncorrectable,
    );
    println!(
        "model    : empirical block failure {:.4} vs analytical {:.4} (z = {:+.2}) | bit-identical: yes",
        serial.empirical_block_failure_rate(),
        serial.analytical_block_failure_rate,
        serial.z_block(),
    );
    assert!(
        serial.within_tolerance(4.0),
        "empirical rates left the 4-sigma band: z_write={:.2} z_read={:.2} z_transient={:.2} z_block={:.2}",
        serial.z_write(),
        serial.z_read(),
        serial.z_transient(),
        serial.z_block()
    );
}

/// The solver leg: a starved Newton budget fails alone but is rescued by
/// the gmin/source-stepping retry ladder.
fn ladder_smoke() {
    let _span = mss_obs::span("fault_smoke.ladder");
    let mut nl = Netlist::new();
    nl.add_vsource("vdd", "vdd", "0", Waveform::dc(1.1))
        .expect("vdd");
    nl.add_vsource("vin", "in", "0", Waveform::dc(1.1))
        .expect("vin");
    nl.add_resistor("rl", "vdd", "out", 20e3).expect("rl");
    nl.add_mosfet(
        "mn",
        "out",
        "in",
        "0",
        MosModel::generic_nmos(),
        MosGeometry {
            width: 4e-6,
            length: 90e-9,
        },
    )
    .expect("mn");
    let starved = SolverOptions::default().with_max_newton(1);
    let plain = dc_operating_point_with(&nl, &SolverOptions::without_ladder().with_max_newton(1));
    let laddered = dc_operating_point_with(&nl, &starved).expect("ladder rescue");
    let out = laddered.node_voltage("out").expect("node out");
    println!(
        "ladder   : 1-iteration newton {} | with ladder out = {:.3} V",
        if plain.is_err() {
            "fails (as forced)"
        } else {
            "unexpectedly converged"
        },
        out
    );
    assert!(plain.is_err(), "starved newton should not converge alone");
}

/// The system leg: a fault-aware big.LITTLE run degrades gracefully.
fn gemsim_smoke() {
    let _span = mss_obs::span("fault_smoke.gemsim");
    let mut cfg = SystemConfig::big_little_default();
    cfg.sample_accesses_per_thread = 8_000;
    let mut model = FaultModel::none();
    model.write_fail_rate = 0.001;
    model.read_disturb_rate = 0.0002;
    cfg.fault = Some(FaultMemConfig::new(
        FaultPlan::new(0xA11E, model).expect("valid plan"),
        EccScheme::bch(2, 512),
    ));
    let sys = System::new(cfg).expect("system");
    let report = sys.run(&Kernel::bodytrack(), 1).expect("kernel run");
    let f = report.fault.expect("fault stats");
    println!(
        "gemsim   : {} array reads, {} writes | {} bits injected, {} retries | survival {:.4}, failures {:.4}",
        f.reads,
        f.writes,
        f.injected_bits,
        f.write_retries,
        f.read_survival_rate(),
        f.read_failure_rate(),
    );
}

fn main() {
    let blocks: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(8_000);
    println!("== fault_smoke: seeded fault plane, ECC cross-validation, retry ladder ==");
    campaign_smoke(blocks);
    ladder_smoke();
    gemsim_smoke();

    mss_bench::write_obs_artifacts("fault_smoke");
}
