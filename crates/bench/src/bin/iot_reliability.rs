//! IoT reliability study (extension experiments beyond the paper's
//! figures): the flow's behaviour across the industrial temperature range,
//! the stray-field co-integration budget, and the variation-aware
//! memory-configuration optimum.

use mss_bench::standard_context;
use mss_mtj::astroid;
use mss_pdk::tech::TechNode;
use mss_units::consts::am_to_oe;
use mss_units::fmt::Eng;
use mss_vaet::optimize::{explore_variation_aware, ReliabilityRequirements, VariationAwareTarget};
use mss_vaet::temperature::{iot_corners, temperature_sweep};

fn main() {
    let ctx = standard_context(TechNode::N45);

    // --- Temperature corners ---
    println!("IoT temperature corners (1024x1024 array, 45 nm, WER target 1e-9)\n");
    println!(
        "{:>8} | {:>8} | {:>14} | {:>16} | {:>14}",
        "T (degC)", "delta", "retention", "margined write", "disturb @5ns"
    );
    let pts = temperature_sweep(&ctx, &iot_corners(), 1e-9).expect("temperature sweep");
    for p in &pts {
        println!(
            "{:>8.0} | {:>8.1} | {:>11.2e} s | {:>16} | {:>14.2e}",
            p.temperature - 273.15,
            p.delta,
            p.retention_seconds,
            Eng(p.margined_write_latency, "s").to_string(),
            p.read_disturb_5ns
        );
    }

    // --- Co-integration stray-field budget ---
    let stack = &ctx.stack;
    let ten_years = 10.0 * 365.25 * 86400.0;
    let budget = astroid::max_tolerable_stray_field(stack, ten_years).expect("stray budget");
    println!(
        "\nco-integration: a memory pillar keeps 10-year retention below {:.0} Oe of\n\
         in-plane stray field (sensor bias magnets produce {:.0} Oe locally — the\n\
         patterned-magnet layout must decay their tail by {:.0}x at the nearest bit).",
        am_to_oe(budget),
        am_to_oe(1.1 * stack.hk_eff()),
        1.1 * stack.hk_eff() / budget
    );

    // --- Variation-aware configuration optimisation ---
    println!("\nvariation-aware organisation search (WER/RER targets 1e-15):");
    let exp = explore_variation_aware(
        &ctx,
        VariationAwareTarget::WriteLatency,
        &ReliabilityRequirements::default(),
    )
    .expect("exploration");
    let b = &exp.best;
    println!(
        "  best subarray {}x{}: margined write {} (nominal {}), margined read {}",
        b.config.subarray_rows,
        b.config.subarray_cols,
        Eng(b.margined_write_latency, "s"),
        Eng(b.nominal.write_latency, "s"),
        Eng(b.margined_read_latency, "s")
    );
    println!(
        "  ({} feasible organisations evaluated)",
        exp.candidates.len()
    );
}
