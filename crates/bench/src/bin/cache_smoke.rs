//! CI smoke benchmark for the content-addressed stage pipeline: runs the
//! MAGPIE flow twice in one process over a shared in-memory cache, then cold
//! and warm against the on-disk tier — asserting a byte-identical
//! [`mss_core::flow::MagpieReport`] and 100 % stage hits on
//! every warm pass. When `MSS_METRICS=1` or `MSS_TRACE=1` the observability
//! registry (including the `pipe.*` cache counters) is written as an NDJSON
//! run report CI archives.
//!
//! ```text
//! cargo run --release -p mss-bench --bin cache_smoke
//! MSS_METRICS=1 cargo run --release -p mss-bench --bin cache_smoke -- 100000
//! ```
//!
//! The optional argument overrides the per-thread sampling cap (default
//! 50 000). `MSS_OBS_OUT` overrides the report path (default
//! `target/cache_smoke.ndjson`). Exits non-zero on any cache-transparency
//! violation.

use std::sync::Arc;

use mss_core::flow::{MagpieFlow, MagpieInputs, MagpieReport};
use mss_core::scenario::Scenario;
use mss_gemsim::workload::Kernel;
use mss_pdk::tech::TechNode;
use mss_pipe::{PipeCache, Stage};

/// Stages the MAGPIE flow exercises (VaetDistributions is owned by the
/// variation-aware explorer, not this flow).
const FLOW_STAGES: [Stage; 4] = [
    Stage::CharacterizeCells,
    Stage::EstimateArray,
    Stage::SimulateKernel,
    Stage::McpatAccount,
];

fn inputs(sample_cap: u64) -> MagpieInputs {
    MagpieInputs {
        node: TechNode::N45,
        kernels: vec![Kernel::swaptions()],
        scenarios: Scenario::ALL.to_vec(),
        seed: 2024,
        sample_cap,
    }
}

fn run(cache: &Arc<PipeCache>, sample_cap: u64) -> MagpieReport {
    MagpieFlow::new_with_cache(inputs(sample_cap), Arc::clone(cache))
        .expect("flow setup")
        .run()
        .expect("flow run")
}

/// Asserts the reports agree down to the serialized figure exports.
fn assert_identical(leg: &str, warm: &MagpieReport, cold: &MagpieReport) {
    assert_eq!(warm, cold, "{leg}: warm report diverged from cold");
    assert_eq!(
        warm.fig11_csv("swaptions"),
        cold.fig11_csv("swaptions"),
        "{leg}: fig11 CSV diverged"
    );
    assert_eq!(
        warm.fig12_csv(),
        cold.fig12_csv(),
        "{leg}: fig12 CSV diverged"
    );
}

/// In-memory leg: the second run of the same process must be 100 % hits.
fn memory_leg(sample_cap: u64) {
    let _span = mss_obs::span("cache_smoke.memory");
    let cache = Arc::new(PipeCache::memory_only());
    let cold = run(&cache, sample_cap);
    let misses_after_cold: Vec<u64> = FLOW_STAGES.iter().map(|&s| cache.stats(s).misses).collect();

    let warm = run(&cache, sample_cap);
    assert_identical("memory", &warm, &cold);
    for (&stage, &cold_misses) in FLOW_STAGES.iter().zip(&misses_after_cold) {
        let s = cache.stats(stage);
        assert_eq!(
            s.misses, cold_misses,
            "memory: {stage} recomputed on the warm run"
        );
        assert!(s.hits > 0, "memory: {stage} saw no hits");
        println!(
            "memory   : {:<18} | {} hits / {} misses / {} evictions",
            stage.name(),
            s.hits,
            s.misses,
            s.evictions
        );
    }
}

/// Disk leg: a fresh cache instance over a warmed directory must serve every
/// artifact stage from disk.
fn disk_leg(sample_cap: u64) {
    let _span = mss_obs::span("cache_smoke.disk");
    let dir = std::path::Path::new("target").join(format!("cache-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold_cache = Arc::new(PipeCache::with_disk(&dir));
    let cold = run(&cold_cache, sample_cap);

    let warm_cache = Arc::new(PipeCache::with_disk(&dir));
    let warm = run(&warm_cache, sample_cap);
    assert_identical("disk", &warm, &cold);

    for stage in [Stage::CharacterizeCells, Stage::EstimateArray] {
        let s = warm_cache.stats(stage);
        assert_eq!(s.misses, 0, "disk: {stage} recomputed despite warm disk");
        assert_eq!(s.load_failures, 0, "disk: {stage} hit damaged entries");
        assert!(s.disk_hits > 0, "disk: {stage} never read the disk tier");
        println!(
            "disk     : {:<18} | {} disk hits / {} memory hits / {} misses",
            stage.name(),
            s.disk_hits,
            s.hits,
            s.misses
        );
    }
    let entries = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    println!(
        "disk     : {entries} NDJSON artifacts under {}",
        dir.display()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let sample_cap: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    println!("== cache_smoke: pipeline cache transparency (memory + disk tiers) ==");
    memory_leg(sample_cap);
    disk_leg(sample_cap);
    println!("cache    : warm runs byte-identical with zero recomputation");

    mss_bench::write_obs_artifacts("cache_smoke");
}
