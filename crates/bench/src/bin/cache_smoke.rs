//! CI smoke benchmark for the content-addressed stage pipeline **and the
//! gemsim hot loop**: runs the MAGPIE flow twice in one process over a
//! shared in-memory cache, then cold and warm against the on-disk tier —
//! asserting a byte-identical [`mss_core::flow::MagpieReport`] and 100 %
//! stage hits on every warm pass — and then times the optimized simulator
//! against the naive executable specification in `mss_gemsim::reference`,
//! asserting **bit-identical** [`mss_gemsim::stats::SimReport`]s and a
//! ≥ 5× throughput win. The win is algorithmic (struct-of-arrays LRU vs
//! `Vec` shifting, O(1) ring-buffer history vs `remove(0)`), so it must
//! hold even on a noisy shared runner. When `MSS_METRICS=1` or
//! `MSS_TRACE=1` the observability registry (including the `pipe.*` cache
//! counters) is written as an NDJSON run report CI archives.
//!
//! ```text
//! cargo run --release -p mss-bench --bin cache_smoke
//! MSS_METRICS=1 cargo run --release -p mss-bench --bin cache_smoke -- 100000
//! ```
//!
//! The optional argument overrides the per-thread sampling cap (default
//! 50 000). `MSS_OBS_OUT` overrides the report path (default
//! `target/cache_smoke.ndjson`). Exits non-zero on any cache-transparency
//! violation, hot-loop parity violation, or a sub-5× speedup.

use std::sync::Arc;
use std::time::Instant;

use mss_core::flow::{MagpieFlow, MagpieInputs, MagpieReport};
use mss_core::scenario::Scenario;
use mss_gemsim::reference;
use mss_gemsim::system::{EpochSkipConfig, Placement, System, SystemConfig};
use mss_gemsim::workload::Kernel;
use mss_pdk::tech::TechNode;
use mss_pipe::{PipeCache, Stage};

/// Fixed timing repetitions per leg (best-of); fixed so the span counts in
/// the committed baseline are reproducible.
const REPS: usize = 3;

/// Required optimized-vs-naive hot-loop throughput ratio.
const MIN_SPEEDUP: f64 = 5.0;

/// Stages the MAGPIE flow exercises (VaetDistributions is owned by the
/// variation-aware explorer, not this flow).
const FLOW_STAGES: [Stage; 4] = [
    Stage::CharacterizeCells,
    Stage::EstimateArray,
    Stage::SimulateKernel,
    Stage::McpatAccount,
];

fn inputs(sample_cap: u64) -> MagpieInputs {
    MagpieInputs {
        node: TechNode::N45,
        kernels: vec![Kernel::swaptions()],
        scenarios: Scenario::ALL.to_vec(),
        seed: 2024,
        sample_cap,
        ..MagpieInputs::defaults()
    }
}

fn run(cache: &Arc<PipeCache>, sample_cap: u64) -> MagpieReport {
    MagpieFlow::new_with_cache(inputs(sample_cap), Arc::clone(cache))
        .expect("flow setup")
        .run()
        .expect("flow run")
}

/// Asserts the reports agree down to the serialized figure exports.
fn assert_identical(leg: &str, warm: &MagpieReport, cold: &MagpieReport) {
    assert_eq!(warm, cold, "{leg}: warm report diverged from cold");
    assert_eq!(
        warm.fig11_csv("swaptions"),
        cold.fig11_csv("swaptions"),
        "{leg}: fig11 CSV diverged"
    );
    assert_eq!(
        warm.fig12_csv(),
        cold.fig12_csv(),
        "{leg}: fig12 CSV diverged"
    );
}

/// In-memory leg: the second run of the same process must be 100 % hits.
fn memory_leg(sample_cap: u64) {
    let _span = mss_obs::span("cache_smoke.memory");
    let cache = Arc::new(PipeCache::memory_only());
    let cold = run(&cache, sample_cap);
    let misses_after_cold: Vec<u64> = FLOW_STAGES.iter().map(|&s| cache.stats(s).misses).collect();

    let warm = run(&cache, sample_cap);
    assert_identical("memory", &warm, &cold);
    for (&stage, &cold_misses) in FLOW_STAGES.iter().zip(&misses_after_cold) {
        let s = cache.stats(stage);
        assert_eq!(
            s.misses, cold_misses,
            "memory: {stage} recomputed on the warm run"
        );
        assert!(s.hits > 0, "memory: {stage} saw no hits");
        println!(
            "memory   : {:<18} | {} hits / {} misses / {} evictions",
            stage.name(),
            s.hits,
            s.misses,
            s.evictions
        );
    }
}

/// Disk leg: a fresh cache instance over a warmed directory must serve every
/// artifact stage from disk.
fn disk_leg(sample_cap: u64) {
    let _span = mss_obs::span("cache_smoke.disk");
    let dir = std::path::Path::new("target").join(format!("cache-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold_cache = Arc::new(PipeCache::with_disk(&dir));
    let cold = run(&cold_cache, sample_cap);

    let warm_cache = Arc::new(PipeCache::with_disk(&dir));
    let warm = run(&warm_cache, sample_cap);
    assert_identical("disk", &warm, &cold);

    for stage in [Stage::CharacterizeCells, Stage::EstimateArray] {
        let s = warm_cache.stats(stage);
        assert_eq!(s.misses, 0, "disk: {stage} recomputed despite warm disk");
        assert_eq!(s.load_failures, 0, "disk: {stage} hit damaged entries");
        assert!(s.disk_hits > 0, "disk: {stage} never read the disk tier");
        println!(
            "disk     : {:<18} | {} disk hits / {} memory hits / {} misses",
            stage.name(),
            s.disk_hits,
            s.hits,
            s.misses
        );
    }
    let entries = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    println!(
        "disk     : {entries} NDJSON artifacts under {}",
        dir.display()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hot-loop perf gate: the optimized simulator (struct-of-arrays cache,
/// ring-buffer stream, chunked loop) against the naive executable
/// specification, on the same kernels the flow legs run. Reports must be
/// bit-identical and the optimized path ≥ [`MIN_SPEEDUP`]× faster.
fn gemsim_speed_leg(sample_cap: u64) {
    let mut config = SystemConfig::big_little_default();
    config.sample_accesses_per_thread = sample_cap;
    let sys = System::new(config.clone()).expect("default platform");
    // The same kernel the flow legs above simulate, so the timed span is
    // the exact workload `pipe.simulate_kernel/gemsim.run` runs.
    let kernel = Kernel::swaptions();

    let mut fast_t = f64::INFINITY;
    let mut fast_report = None;
    for _ in 0..REPS {
        let _span = mss_obs::span("cache_smoke.gemsim.fast");
        let t0 = Instant::now();
        let report = sys.run(&kernel, 2024).expect("fast run");
        fast_t = fast_t.min(t0.elapsed().as_secs_f64());
        fast_report = Some(report);
    }

    let mut naive_t = f64::INFINITY;
    let mut naive_report = None;
    for _ in 0..REPS {
        let _span = mss_obs::span("cache_smoke.gemsim.naive");
        let t0 = Instant::now();
        let report = reference::run_placed(&config, &kernel, 2024, &Placement::AllClusters)
            .expect("naive run");
        naive_t = naive_t.min(t0.elapsed().as_secs_f64());
        naive_report = Some(report);
    }

    assert_eq!(
        fast_report, naive_report,
        "optimized hot loop diverged from the reference semantics"
    );
    let accesses = sample_cap * u64::from(kernel.threads);
    let speedup = naive_t / fast_t;
    println!(
        "gemsim   : optimized {fast_t:.3} s | naive {naive_t:.3} s | {:.0} vs {:.0} accesses/s | bits == naive",
        accesses as f64 / fast_t,
        accesses as f64 / naive_t
    );
    println!("speedup  : {speedup:.2}x optimized over naive (gate: >= {MIN_SPEEDUP:.1}x)");
    mss_obs::counter_add("cache_smoke.gate.accesses", accesses);
    if speedup < MIN_SPEEDUP {
        eprintln!(
            "FAIL: optimized hot loop only {speedup:.2}x the naive reference (need >= {MIN_SPEEDUP:.1}x)"
        );
        std::process::exit(1);
    }

    // Diagnostic (non-gating): the opt-in epoch-skip fast path on the
    // steady-state streaming kernel — shows how much of the tail it
    // extrapolates (2048-reference windows, 10 % tolerance: the profile of
    // a streaming kernel is flat after warm-up at that granularity).
    let mut skip_cfg = config;
    skip_cfg.epoch_skip = Some(EpochSkipConfig {
        window: 2048,
        converge_windows: 3,
        tolerance: 0.10,
    });
    let skip = System::new(skip_cfg)
        .expect("epoch-skip platform")
        .run(&Kernel::streamcluster(), 2024)
        .expect("epoch-skip run");
    println!(
        "epoch    : streamcluster extrapolated {} references (opt-in; default reports stay exact)",
        skip.extrapolated_accesses
    );
}

fn main() {
    let sample_cap: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    println!("== cache_smoke: pipeline cache transparency (memory + disk tiers) ==");
    memory_leg(sample_cap);
    disk_leg(sample_cap);
    println!("cache    : warm runs byte-identical with zero recomputation");
    gemsim_speed_leg(sample_cap);

    mss_bench::write_obs_artifacts("cache_smoke");
}
