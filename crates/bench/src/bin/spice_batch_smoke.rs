//! CI perf gate for the batched same-structure SPICE backend: solves the
//! sense-margin divider for thousands of Monte Carlo parameter vectors two
//! ways — the historic per-sample workflow (build the sampled deck, run a
//! full [`dc_operating_point_with`]) and the symbolic-once/numeric-many
//! [`DcBatch`] path at 1/2/8 threads — asserting
//! **bit-identical** tap voltages everywhere, identical `SpiceError`
//! classification on a structurally singular deck, the same parity for a
//! batched three-terminal SOT read divider, and a ≥ 3× batched throughput
//! win (solves/sec). The win is per-solve overhead elimination
//! (one symbolic analysis, one workspace, no per-sample report packaging),
//! so it must hold even on a single-core runner.
//!
//! ```text
//! cargo run --release -p mss-bench --bin spice_batch_smoke
//! MSS_METRICS=1 cargo run --release -p mss-bench --bin spice_batch_smoke -- 8192
//! ```
//!
//! The optional argument overrides the Monte Carlo sample count (default
//! 4096). Thread counts and chunk sizes are pinned — never taken from the
//! environment — so the emitted `spice.batch.*` counters and span structure
//! are machine-independent and gate exactly against
//! `results/BENCH_spice_batch.json` via `mss_report check`. Exits non-zero
//! on any parity violation or a sub-3× speedup.

use std::time::Instant;

use mss_exec::ParallelConfig;
use mss_mtj::resistance::MtjState;
use mss_mtj::{MssStack, SotParams};
use mss_pdk::tech::TechNode;
use mss_spice::analysis::{dc_operating_point_with, SolverOptions};
use mss_spice::batch::DcBatch;
use mss_spice::netlist::Netlist;
use mss_spice::waveform::Waveform;
use mss_spice::SpiceError;
use mss_units::rng::{Rng, Xoshiro256PlusPlus};
use mss_vaet::montecarlo::{sense_margin_batch_with, SenseBatchOptions};

/// Fixed timing repetitions per leg (best-of); fixed so the span counts in
/// the committed baseline are reproducible.
const REPS: usize = 3;

/// Required batched-vs-single throughput ratio.
const MIN_SPEEDUP: f64 = 3.0;

/// RNG seed for the per-sample cell resistances.
const SEED: u64 = 0xB47C_5EED;

/// The read-path divider: a bitline bias into matched series resistors
/// feeding a parallel-state leg and an antiparallel-state leg (same shape
/// as `mss_vaet::montecarlo::sense_margin_batch`).
fn divider_with(r_p: f64, r_ap: f64) -> Netlist {
    let mut nl = Netlist::new();
    nl.add_vsource("vr", "bl", "0", Waveform::dc(0.1)).unwrap();
    nl.add_resistor("rsp", "bl", "sp", 3.0e3).unwrap();
    nl.add_resistor("rsap", "bl", "sap", 3.0e3).unwrap();
    nl.add_resistor("rp", "sp", "0", r_p).unwrap();
    nl.add_resistor("rap", "sap", "0", r_ap).unwrap();
    nl
}

/// The nominal divider (the batch's base topology).
fn divider() -> Netlist {
    divider_with(2.0e3, 5.0e3)
}

/// Per-sample cell resistances from a *sample-indexed* RNG stream:
/// log-uniform ±0.3 decades around the nominal P/AP values, identical for
/// every leg, thread count and chunking.
fn cell(sample: usize) -> (f64, f64) {
    let mut rng = Xoshiro256PlusPlus::stream(SEED, sample as u64);
    let r_p = 2.0e3 * 10f64.powf(rng.gen_range_f64(-0.3, 0.3));
    let r_ap = 5.0e3 * 10f64.powf(rng.gen_range_f64(-0.3, 0.3));
    (r_p, r_ap)
}

/// Historic path — the pre-batch Monte Carlo workflow this backend
/// replaces: construct the sampled deck and run a full
/// `dc_operating_point` (netlist build, symbolic analysis, workspace and
/// report packaging) per sample. Returns the `(v_sp, v_sap)` pairs and the
/// best-of-[`REPS`] wall time.
fn single_leg(samples: usize) -> (Vec<f64>, f64) {
    let opts = SolverOptions::default();
    let mut best = f64::INFINITY;
    let mut taps = Vec::new();
    for _ in 0..REPS {
        let _span = mss_obs::span("spice_batch_smoke.single");
        let t0 = Instant::now();
        let mut out = Vec::with_capacity(2 * samples);
        for i in 0..samples {
            let (r_p, r_ap) = cell(i);
            let nl = divider_with(r_p, r_ap);
            let dc = dc_operating_point_with(&nl, &opts).expect("divider solves");
            out.push(dc.node_voltage("sp").unwrap());
            out.push(dc.node_voltage("sap").unwrap());
        }
        best = best.min(t0.elapsed().as_secs_f64());
        taps = out;
    }
    (taps, best)
}

/// Batched path at a pinned thread count: symbolic analysis once, numeric
/// solves for every sample. Returns the same `(v_sp, v_sap)` pairs and the
/// best-of-[`REPS`] wall time.
fn batched_leg(samples: usize, threads: usize) -> (Vec<f64>, f64) {
    let nl = divider();
    let rp = nl.element_index("rp").unwrap();
    let rap = nl.element_index("rap").unwrap();
    let batch = DcBatch::new(&nl);
    let cfg = ParallelConfig::serial()
        .with_threads(threads)
        .with_chunk(256);
    let mut best = f64::INFINITY;
    let mut taps = Vec::new();
    for _ in 0..REPS {
        let _span = mss_obs::span("spice_batch_smoke.batched");
        let t0 = Instant::now();
        let run = batch.run_with(samples, &cfg, |i, nl| {
            let (r_p, r_ap) = cell(i);
            nl.set_resistance(rp, r_p)?;
            nl.set_resistance(rap, r_ap)
        });
        best = best.min(t0.elapsed().as_secs_f64());
        assert_eq!(run.failure_count(), 0, "divider must solve every sample");
        let mut out = Vec::with_capacity(2 * samples);
        for i in 0..samples {
            out.push(run.node_voltage(i, "sp").unwrap());
            out.push(run.node_voltage(i, "sap").unwrap());
        }
        taps = out;
    }
    (taps, best)
}

/// A structurally singular deck (two sources forcing the same node pair):
/// the batch must classify every sample exactly as the single path does —
/// [`SpiceError::SingularMatrix`] — and keep going.
fn singular_leg() {
    let _span = mss_obs::span("spice_batch_smoke.singular");
    let mut nl = Netlist::new();
    nl.add_vsource("v1", "a", "0", Waveform::dc(1.0)).unwrap();
    nl.add_vsource("v2", "a", "0", Waveform::dc(2.0)).unwrap();
    nl.add_resistor("r1", "a", "0", 1e3).unwrap();
    let single = dc_operating_point_with(&nl, &SolverOptions::default()).unwrap_err();
    assert_eq!(single, SpiceError::SingularMatrix);

    let v2 = nl.element_index("v2").unwrap();
    let batch = DcBatch::new(&nl);
    let cfg = ParallelConfig::serial().with_threads(2).with_chunk(3);
    let run = batch.run_with(8, &cfg, |i, nl| {
        nl.set_source_wave(v2, Waveform::dc(2.0 + i as f64))
    });
    assert_eq!(run.failure_count(), 8, "every sample is singular");
    for i in 0..8 {
        assert_eq!(run.outcome(i).unwrap_err(), &single, "sample {i}");
    }
    println!("singular : 8/8 samples classified SingularMatrix; batch survives");
}

/// The three-terminal SOT cell through the batched solver: a read-path
/// divider around an `MTJSOT` element (series resistor into the read
/// terminal, heavy-metal channel grounded at the write terminal), batching
/// over junction state *and* series resistance at the pinned thread counts.
/// Every sample must match the one-shot `dc_operating_point_with` solve
/// bitwise, and the AP junction must divide higher than the P one at the
/// read tap.
fn sot_leg() {
    let _span = mss_obs::span("spice_batch_smoke.sot");
    const SOT_SAMPLES: usize = 64;
    let stack = MssStack::builder().build().expect("reference stack");
    let params = SotParams::default();
    let build = || {
        let mut nl = Netlist::new();
        nl.add_vsource("vr", "bl", "0", Waveform::dc(0.1)).unwrap();
        nl.add_resistor("rs", "bl", "rd", 3.0e3).unwrap();
        nl.add_mtj_sot("x1", "rd", "sh", "0", &stack, &params, MtjState::Parallel)
            .unwrap();
        nl
    };
    let nl = build();
    let rs = nl.element_index("rs").unwrap();
    let x1 = nl.element_index("x1").unwrap();
    let state = |i: usize| {
        if i.is_multiple_of(2) {
            MtjState::Parallel
        } else {
            MtjState::Antiparallel
        }
    };
    let ohms = |i: usize| {
        let mut rng = Xoshiro256PlusPlus::stream(SEED ^ 0x507, i as u64);
        3.0e3 * 10f64.powf(rng.gen_range_f64(-0.2, 0.2))
    };

    // Reference: the historic one-shot solve per sample.
    let mut single_taps = Vec::with_capacity(SOT_SAMPLES);
    for i in 0..SOT_SAMPLES {
        let mut single = build();
        single.set_mtj_state(x1, state(i)).unwrap();
        single.set_resistance(rs, ohms(i)).unwrap();
        let dc = dc_operating_point_with(&single, &SolverOptions::default())
            .expect("SOT read divider solves");
        single_taps.push(dc.node_voltage("rd").unwrap());
    }

    let batch = DcBatch::new(&nl);
    for threads in [1usize, 2, 8] {
        let cfg = ParallelConfig::serial()
            .with_threads(threads)
            .with_chunk(16);
        let run = batch.run_with(SOT_SAMPLES, &cfg, |i, nl| {
            nl.set_mtj_state(x1, state(i))?;
            nl.set_resistance(rs, ohms(i))
        });
        assert_eq!(run.failure_count(), 0, "SOT divider must solve everywhere");
        for (i, &tap) in single_taps.iter().enumerate() {
            assert_eq!(
                run.node_voltage(i, "rd").unwrap(),
                tap,
                "SOT sample {i} at {threads} threads diverged from the single solve"
            );
        }
        // AP junction divides higher than P at the read tap.
        assert!(
            run.node_voltage(1, "rd").unwrap() > run.node_voltage(0, "rd").unwrap(),
            "AP read tap must sit above the P one"
        );
    }
    println!(
        "sot      : {SOT_SAMPLES} three-terminal solves | bits == single at 1/2/8 threads | AP > P at read tap"
    );
}

/// The paper-level consumer: the VAET sense-margin Monte Carlo through the
/// batched solver, bit-identical across thread counts.
fn vaet_leg() {
    let _span = mss_obs::span("spice_batch_smoke.vaet");
    let ctx = mss_bench::standard_context(TechNode::N45);
    let opts = SenseBatchOptions::default();
    let serial = sense_margin_batch_with(&ctx, &opts, &ParallelConfig::serial().with_chunk(256))
        .expect("sense batch");
    let threaded = sense_margin_batch_with(
        &ctx,
        &opts,
        &ParallelConfig::serial().with_threads(4).with_chunk(256),
    )
    .expect("sense batch");
    assert_eq!(
        serial, threaded,
        "sense batch diverged across thread counts"
    );
    assert_eq!(serial.failed_solves, 0, "sense divider must always solve");
    assert!(serial.min_margin > 0.0, "AP leg must sense above the P leg");
    println!(
        "vaet     : {} samples | margin mu {:.4} V sigma {:.4} V | min {:.4} V | {} below offset",
        serial.samples,
        serial.margin.mean,
        serial.margin.std_dev,
        serial.min_margin,
        serial.below_offset
    );
}

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096);
    assert!(samples >= 1000, "the gate is specified for >= 1000 samples");
    println!("== spice_batch_smoke: batched same-structure solver parity + throughput ==");

    let (single_taps, single_t) = single_leg(samples);
    let mut batched_t = f64::INFINITY;
    for threads in [1usize, 2, 8] {
        let (taps, t) = batched_leg(samples, threads);
        assert_eq!(
            taps, single_taps,
            "batched taps at {threads} threads are not bit-identical to the single path"
        );
        println!(
            "batched  : {threads} thread(s) | {samples} solves in {t:.3} s | {:.0} solves/s | bits == single",
            samples as f64 / t
        );
        batched_t = batched_t.min(t);
    }
    println!(
        "single   : {samples} solves in {single_t:.3} s | {:.0} solves/s",
        samples as f64 / single_t
    );

    let speedup = single_t / batched_t;
    println!("speedup  : {speedup:.2}x batched over single (gate: >= {MIN_SPEEDUP:.1}x)");
    mss_obs::counter_add("spice_batch_smoke.gate.samples", samples as u64);
    if speedup < MIN_SPEEDUP {
        eprintln!(
            "FAIL: batched throughput only {speedup:.2}x the single-solve path (need >= {MIN_SPEEDUP:.1}x)"
        );
        std::process::exit(1);
    }

    singular_leg();
    sot_leg();
    vaet_leg();

    mss_bench::write_obs_artifacts("spice_batch_smoke");
}
