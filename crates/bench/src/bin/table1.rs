//! E-T1 — regenerates the paper's **Table 1**: nominal vs variation-aware
//! (μ, σ) write/read latency and energy for a 1024×1024 STT-MRAM array at
//! 45 nm and 65 nm.

use mss_bench::standard_context;
use mss_pdk::tech::TechNode;
use mss_vaet::montecarlo::{run, MonteCarloOptions};

fn main() {
    println!("Table 1: overall latency and energy values for 45 nm and 65 nm");
    println!("technology nodes for a memory array of 1024x1024\n");
    for node in TechNode::ALL {
        let ctx = standard_context(node);
        let report = run(
            &ctx,
            &MonteCarloOptions {
                samples: 2000,
                seed: 0x007A_B1E1,
                word_bits: None,
            },
        )
        .expect("monte carlo");
        println!("{}", report.to_table());
    }
}
