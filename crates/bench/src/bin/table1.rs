//! E-T1 — regenerates the paper's **Table 1**: nominal vs variation-aware
//! (μ, σ) write/read latency and energy for a 1024×1024 STT-MRAM array at
//! 45 nm and 65 nm — then reruns each node on the three-terminal SOT/SHE
//! cell, so the table doubles as the device-level STT-vs-SOT comparison
//! (the channel write removes the damping limit from the write tail).

use mss_bench::{standard_context, standard_sot_context};
use mss_pdk::tech::TechNode;
use mss_vaet::montecarlo::{run, MonteCarloOptions};

fn main() {
    println!("Table 1: overall latency and energy values for 45 nm and 65 nm");
    println!("technology nodes for a memory array of 1024x1024\n");
    let opts = MonteCarloOptions {
        samples: 2000,
        seed: 0x007A_B1E1,
        word_bits: None,
    };
    for node in TechNode::ALL {
        let ctx = standard_context(node);
        let report = run(&ctx, &opts).expect("monte carlo");
        println!("{}", report.to_table());
    }

    println!("Table 1 (SOT): the same arrays on the three-terminal SOT cell");
    println!("(channel write — no damping limit in the write tail)\n");
    for node in TechNode::ALL {
        let sot_ctx = standard_sot_context(node);
        let sot_report = run(&sot_ctx, &opts).expect("SOT monte carlo");
        println!("{}", sot_report.to_table());
    }
}
