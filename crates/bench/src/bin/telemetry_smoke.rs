//! CI gate for the live telemetry plane: proves the event bus is an
//! *observer*, never a participant.
//!
//! ```text
//! cargo run --release -p mss-bench --bin telemetry_smoke
//! ```
//!
//! Legs:
//!
//! 1. **parity** — re-runs itself as a child process with `MSS_EVENTS`
//!    off and on at 1/2/8 threads; all six simulation outputs (gemsim
//!    supervised sweep + vaet Monte Carlo) must be byte-identical,
//! 2. **stream** — the telemetry-on children's event streams must pass the
//!    `mss-prof` schema validator and carry progress for both sweeps,
//! 3. **overhead** — 10 M disabled-bus gate checks must cost well under
//!    the observability overhead budget (1 s),
//! 4. **watchdog** — a deliberately ~20x slowed span must be detected
//!    against a baseline cut from a fast run (and a healthy rerun must
//!    stay quiet),
//! 5. **flight** — a child sweep with an injected panic and a live bus
//!    must leave a flight recording that the validator accepts.
//!
//! Exits non-zero on any violation.

use std::process::Command;
use std::time::{Duration, Instant};

use mss_exec::supervise::SupervisorConfig;
use mss_exec::ParallelConfig;
use mss_gemsim::system::{System, SystemConfig};
use mss_gemsim::workload::Kernel;
use mss_obs::{Mode, Registry};
use mss_pdk::tech::TechNode;
use mss_prof::{Baseline, Report, Watchdog};
use mss_vaet::montecarlo::{run_with_stats, MonteCarloOptions};

const SAMPLE_CAP: u64 = 20_000;
const MC_SAMPLES: usize = 20_000;
const PANIC_TAG: &str = "telemetry-chaos";

/// The deterministic workload both parity children run: a supervised
/// gemsim kernel sweep plus a vaet Monte Carlo, printed as exact Debug
/// text (bit-identical floats print identically).
fn child_workload() {
    let exec = ParallelConfig::from_env();
    let mut cfg = SystemConfig::big_little_default();
    cfg.sample_accesses_per_thread = SAMPLE_CAP;
    let sys = System::new(cfg).expect("system");
    let kernels = [
        Kernel::bodytrack(),
        Kernel::streamcluster(),
        Kernel::swaptions(),
    ];
    let sweep = sys.run_many_supervised(&kernels, 0xC4A05, &exec, &SupervisorConfig::disabled());
    assert!(sweep.is_complete(), "{}", sweep.failure_manifest());
    for (i, report) in sweep.completed() {
        println!("gemsim[{i}] {report:?}");
    }

    let ctx = mss_bench::standard_context(TechNode::N45);
    let opts = MonteCarloOptions {
        samples: MC_SAMPLES,
        seed: 0x5EED_C0DE,
        word_bits: Some(64),
    };
    let (report, _) = run_with_stats(&ctx, &opts, &exec).expect("Monte Carlo");
    println!("vaet {report:?}");
}

/// The flight-recorder child: a supervised sweep with one always-panicking
/// task under a live bus — must end partial and dump a flight recording.
fn child_fail() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !message.contains(PANIC_TAG) {
            default(info);
        }
    }));
    let items: Vec<u64> = (0..8).collect();
    let sup = SupervisorConfig::disabled().with_label("telemetry.fail");
    let sweep = mss_exec::supervised_map(
        &ParallelConfig::serial().with_threads(2),
        &sup,
        &items,
        |ctx, &x| {
            if ctx.index == 3 {
                panic!("{PANIC_TAG} injected");
            }
            Ok::<_, String>(x * 11)
        },
    );
    assert_eq!(sweep.failures.len(), 1);
    assert_eq!(sweep.completed_count(), 7);
}

fn spawn_child(mode: &str, threads: usize, events_path: Option<&str>) -> String {
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = Command::new(exe);
    cmd.arg(mode)
        .env("MSS_THREADS", threads.to_string())
        .env_remove("MSS_METRICS")
        .env_remove("MSS_TRACE")
        .env_remove("MSS_DEADLINE_MS")
        .env_remove("MSS_RETRY_MAX");
    match events_path {
        Some(path) => {
            let _ = std::fs::remove_file(path);
            cmd.env("MSS_EVENTS", "1").env("MSS_EVENTS_PATH", path);
        }
        None => {
            cmd.env("MSS_EVENTS", "0").env_remove("MSS_EVENTS_PATH");
        }
    }
    let out = cmd.output().expect("spawn child");
    assert!(
        out.status.success(),
        "child {mode} (threads {threads}, events {}) failed:\n{}",
        events_path.is_some(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("child stdout is UTF-8")
}

/// Leg 1+2: byte parity across telemetry on/off and thread counts, then
/// validate the telemetry-on streams.
fn parity_leg() {
    let reference = spawn_child("child", 1, None);
    assert!(
        reference.contains("gemsim[0]") && reference.contains("vaet"),
        "child produced no workload output"
    );
    let mut validated_streams = 0;
    for threads in [1usize, 2, 8] {
        let off = spawn_child("child", threads, None);
        assert_eq!(
            off, reference,
            "telemetry-off output diverged at {threads} threads"
        );
        let path = format!("target/telemetry_smoke_events_{threads}.ndjson");
        let on = spawn_child("child", threads, Some(&path));
        assert_eq!(
            on, reference,
            "telemetry-on output diverged at {threads} threads"
        );

        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("telemetry-on child wrote no stream at {path}: {e}"));
        let report = Report::parse_ndjson(&text)
            .unwrap_or_else(|e| panic!("{path} failed schema validation: {e}"));
        assert_eq!(report.meta.mode, "events");
        for sweep in ["gemsim.run_many", "vaet.mc"] {
            assert!(
                report
                    .bus
                    .iter()
                    .any(|b| b.kind == "progress" && b.str_field("sweep") == Some(sweep)),
                "{path}: no progress events for {sweep}"
            );
        }
        validated_streams += 1;
        let _ = std::fs::remove_file(&path);
    }
    println!(
        "parity   : 7 runs byte-identical (events off/on x 1/2/8 threads) | {validated_streams} streams validated"
    );
}

/// Leg 3: the disabled bus must be a relaxed atomic load, nothing more.
fn overhead_leg() {
    assert!(
        !mss_obs::events::bus_enabled(),
        "parent must run with the bus disabled"
    );
    const N: u64 = 10_000_000;
    let t0 = Instant::now();
    let mut armed = 0u64;
    for i in 0..N {
        if mss_obs::events::bus_enabled() {
            armed += std::hint::black_box(i);
        }
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(armed);
    assert!(
        elapsed < Duration::from_secs(1),
        "10M disabled-bus gates took {elapsed:?}; the off path must stay under the obs overhead budget"
    );
    println!(
        "overhead : {N} disabled-bus gate checks in {:.1} ms",
        elapsed.as_secs_f64() * 1e3
    );
}

/// Leg 4: the runtime watchdog's acceptance self-test — a ~20x slowed span
/// must be named, and a healthy rerun must stay quiet.
fn watchdog_leg() {
    let timed_registry = |spin_ms: u64| {
        let reg = Registry::new(Mode::Metrics);
        {
            let _g = reg.span("telemetry_smoke.leg");
            std::thread::sleep(Duration::from_millis(spin_ms));
        }
        reg
    };
    let fast = Report::parse_ndjson(&timed_registry(3).to_ndjson()).expect("fast report");
    let wd = Watchdog::new(Baseline::from_report("telemetry_smoke", &fast), 4.0, 0.02);
    let regressions = wd
        .check_registry(&timed_registry(60))
        .expect("slow registry parses");
    assert_eq!(
        regressions.len(),
        1,
        "watchdog missed a 20x slowdown: {regressions:?}"
    );
    assert_eq!(regressions[0].span, "telemetry_smoke.leg");
    assert!(regressions[0].ratio > 4.0);
    let healthy = wd
        .check_registry(&timed_registry(3))
        .expect("healthy registry parses");
    assert!(healthy.is_empty(), "false positive: {healthy:?}");
    println!(
        "watchdog : detected {:.1}x regression on a deliberately slowed span | healthy rerun quiet",
        regressions[0].ratio
    );
}

/// Leg 5: a failing sweep under a live bus leaves a validating flight
/// recording.
fn flight_leg() {
    let flight_path = "target/flight_telemetry.fail_0000000000000000.ndjson";
    let _ = std::fs::remove_file(flight_path);
    let events_path = "target/telemetry_smoke_fail_events.ndjson";
    spawn_child("child-fail", 2, Some(events_path));
    let text = std::fs::read_to_string(flight_path)
        .unwrap_or_else(|e| panic!("failing sweep left no flight recording at {flight_path}: {e}"));
    let report = Report::parse_ndjson(&text)
        .unwrap_or_else(|e| panic!("flight recording failed schema validation: {e}"));
    assert_eq!(report.meta.mode, "events");
    let failure = report
        .bus
        .iter()
        .find(|b| b.kind == "failure")
        .expect("flight recording carries the failure event");
    assert_eq!(failure.str_field("sweep"), Some("telemetry.fail"));
    assert_eq!(failure.u64_field("index"), Some(3));
    println!(
        "flight   : {} bus events recorded -> {flight_path} (validated)",
        report.bus.len()
    );
    let _ = std::fs::remove_file(flight_path);
    let _ = std::fs::remove_file(events_path);
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("child") => return child_workload(),
        Some("child-fail") => return child_fail(),
        Some(other) => panic!("unknown mode {other:?}"),
        None => {}
    }
    println!("== telemetry_smoke: the event bus observes, never participates ==");
    parity_leg();
    overhead_leg();
    watchdog_leg();
    flight_leg();
    mss_bench::write_obs_artifacts("telemetry_smoke");
}
