//! E-F9 — regenerates the paper's **Fig. 9**: read-disturb probabilities
//! for different read periods, plus the conflicting RER curve and the
//! combined-optimum read period.

use mss_bench::{fig9_periods, standard_context};
use mss_pdk::tech::TechNode;
use mss_units::fmt::Eng;
use mss_vaet::read::{figure9, optimal_read_period};

fn main() {
    let ctx = standard_context(TechNode::N45);
    let points = figure9(&ctx, &fig9_periods());
    println!("Fig. 9: read disturb probabilities for different read periods (45 nm)\n");
    println!(
        "{:<14} | {:>18} | {:>14}",
        "read period", "disturb prob", "RER"
    );
    for p in &points {
        println!(
            "{:<14} | {:>18.3e} | {:>14.3e}",
            Eng(p.period, "s").to_string(),
            p.disturb_probability,
            p.read_error_rate
        );
    }
    let best = optimal_read_period(&ctx, 0.2e-9, 50e-9).expect("optimum");
    println!(
        "\noptimal read period balancing RER vs disturb: {} (RER {:.2e}, disturb {:.2e})",
        Eng(best.period, "s"),
        best.read_error_rate,
        best.disturb_probability
    );
}
