//! E-F7 — regenerates the paper's **Fig. 7**: overall read and write
//! latencies for various target error rates (RER/WER ∈ {1e-5, 1e-10,
//! 1e-15}). Lower target rates require higher timing margins.

use mss_bench::{standard_context, FIG7_TARGETS};
use mss_pdk::tech::TechNode;
use mss_units::fmt::Eng;
use mss_vaet::margins::figure7;

fn main() {
    let ctx = standard_context(TechNode::N45);
    let (write, read) = figure7(&ctx, &FIG7_TARGETS).expect("margin solve");
    println!("Fig. 7: overall read and write latencies for various error rates (45 nm)\n");
    println!(
        "{:<12} | {:>16} | {:>16}",
        "target rate", "write latency", "read latency"
    );
    for (w, r) in write.iter().zip(&read) {
        println!(
            "{:<12.0e} | {:>16} | {:>16}",
            w.target,
            Eng(w.latency, "s").to_string(),
            Eng(r.latency, "s").to_string()
        );
    }
    println!(
        "\nnominal write latency: {}   nominal read latency: {}",
        Eng(ctx.nominal.write_latency, "s"),
        Eng(ctx.nominal.read_latency, "s")
    );
}
