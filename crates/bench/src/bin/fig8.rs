//! E-F8 — regenerates the paper's **Fig. 8**: effect of ECCs on write
//! latency for an uncorrectable-WER target of 1×10⁻¹⁸. One corrected bit
//! buys a drastic latency drop; further bits give diminishing returns.

use mss_bench::{standard_context, FIG8_TARGET};
use mss_pdk::tech::TechNode;
use mss_units::fmt::Eng;
use mss_vaet::ecc::figure8;

fn main() {
    let ctx = standard_context(TechNode::N45);
    let points = figure8(&ctx, FIG8_TARGET, 4).expect("ecc sweep");
    println!("Fig. 8: effect of ECCs on write latency for WER of 1e-18 (45 nm)\n");
    println!(
        "{:<16} | {:>16} | {:>14} | {:>10}",
        "corrected bits", "write latency", "allowed bit WER", "overhead"
    );
    for p in &points {
        println!(
            "{:<16} | {:>16} | {:>14.2e} | {:>9.1}%",
            p.scheme.correctable,
            Eng(p.write_latency, "s").to_string(),
            p.allowed_bit_wer,
            p.overhead * 100.0
        );
    }
    let drop0to1 = points[0].write_latency - points[1].write_latency;
    let drop1to2 = points[1].write_latency - points[2].write_latency;
    println!(
        "\nlatency gain 0->1 bit: {}   1->2 bits: {}",
        Eng(drop0to1, "s"),
        Eng(drop1to2.max(0.0), "s")
    );
}
