//! CI smoke benchmark: small workloads through every instrumented layer of
//! the flow (vaet Monte Carlo, mtj LLG, spice transient, gemsim kernel),
//! printing sample throughput and — when `MSS_METRICS=1` or `MSS_TRACE=1` —
//! writing the observability registry as an NDJSON run report CI archives.
//!
//! ```text
//! cargo run --release -p mss-bench --bin mc_smoke
//! MSS_METRICS=1 MSS_THREADS=8 cargo run --release -p mss-bench --bin mc_smoke -- 20000
//! ```
//!
//! The optional argument overrides the Monte Carlo sample count (default
//! 4000). `MSS_OBS_OUT` overrides the report path (default
//! `target/mc_smoke.ndjson`).

use mss_bench::standard_context;
use mss_exec::ParallelConfig;
use mss_gemsim::system::{System, SystemConfig};
use mss_gemsim::workload::Kernel;
use mss_mtj::llg::{LlgOptions, LlgSimulator};
use mss_mtj::resistance::MtjState;
use mss_mtj::switching::SwitchingModel;
use mss_mtj::{MssDevice, MssStack, SotMechanism, SotParams, SwitchingMechanism};
use mss_pdk::tech::TechNode;
use mss_spice::analysis::{Transient, TransientOptions};
use mss_spice::netlist::Netlist;
use mss_spice::waveform::Waveform;
use mss_units::Vec3;
use mss_vaet::montecarlo::{run_with_stats, MonteCarloOptions};

/// The vaet Monte Carlo leg: serial vs parallel, asserting bit-identity.
fn vaet_smoke(samples: usize) {
    let _span = mss_obs::span("mc_smoke.vaet");
    let ctx = standard_context(TechNode::N45);
    let opts = MonteCarloOptions {
        samples,
        seed: 0x5EED_C0DE,
        word_bits: Some(64),
    };

    let serial_cfg = ParallelConfig::serial();
    let (serial_report, serial_stats) =
        run_with_stats(&ctx, &opts, &serial_cfg).expect("serial Monte Carlo");
    println!(
        "serial   : {}",
        serial_stats.to_table().lines().next().unwrap_or("")
    );

    let par_cfg = ParallelConfig::from_env();
    let (par_report, par_stats) =
        run_with_stats(&ctx, &opts, &par_cfg).expect("parallel Monte Carlo");
    print!("parallel : {}", par_stats.to_table());

    assert_eq!(
        serial_report, par_report,
        "determinism violation: parallel report diverged from serial"
    );
    let speedup = par_stats.samples_per_second() / serial_stats.samples_per_second().max(1e-9);
    println!(
        "speedup {speedup:.2}x at {} threads | reports bit-identical: yes",
        par_stats.threads
    );
}

/// A tiny LLG current sweep (device layer).
fn llg_smoke() {
    let _span = mss_obs::span("mc_smoke.llg");
    let device = MssDevice::memory(MssStack::builder().build().expect("reference stack"));
    let ic = SwitchingModel::new(device.stack()).critical_current();
    let sim = LlgSimulator::new(&device);
    let theta0 = std::f64::consts::PI - device.stack().thermal_angle();
    let m0 = Vec3::from_spherical(theta0, 0.0);
    let points = sim.current_sweep(
        &[2.0 * ic, 3.0 * ic],
        m0,
        40e-9,
        0.0,
        &LlgOptions::default(),
        &ParallelConfig::from_env(),
    );
    let switched = points.iter().filter(|p| p.switching_time.is_some()).count();
    println!(
        "llg      : {switched}/{} sweep points switched",
        points.len()
    );
}

/// An MTJ write pulse through the MNA transient engine (circuit layer).
fn spice_smoke() {
    let _span = mss_obs::span("mc_smoke.spice");
    let stack = MssStack::builder().build().expect("reference stack");
    let v_write = 2.5 * stack.critical_current() * stack.resistance_antiparallel();
    let mut nl = Netlist::new();
    nl.add_vsource(
        "vw",
        "top",
        "0",
        Waveform::pulse(0.0, v_write, 1e-9, 0.05e-9, 0.05e-9, 40e-9, 0.0),
    )
    .expect("vsource");
    nl.add_mtj("x1", "top", "0", &stack, MtjState::Antiparallel)
        .expect("mtj element");
    let res = Transient::new(&nl)
        .expect("transient setup")
        .run(&TransientOptions::new(0.05e-9, 45e-9))
        .expect("transient run");
    println!(
        "spice    : {} time points, {} switch event(s)",
        res.times().len(),
        res.events().len()
    );
}

/// The SOT mechanism leg: the three-terminal cell written through the
/// heavy-metal channel, solved by the same MNA transient engine — asserts
/// the channel write actually switches the junction and that the SHE write
/// is far faster than the STT damping-limited one.
fn sot_smoke() {
    let _span = mss_obs::span("mc_smoke.sot");
    let stack = MssStack::builder().build().expect("reference stack");
    let params = SotParams::default();
    let sot = SotMechanism::new(&stack, params.clone()).expect("SOT mechanism");
    let stt = SwitchingModel::new(&stack);

    // Device layer: the channel write constant is the damping-scaled
    // precession time — orders of magnitude under the STT one.
    let t_sot = sot
        .mean_switching_time(1.5 * sot.critical_current())
        .expect("overdriven");
    let t_stt = stt
        .mean_switching_time(1.5 * stt.critical_current())
        .expect("overdriven");
    assert!(
        t_sot < 0.05 * t_stt,
        "SOT write {t_sot:.3e} s not clearly under STT write {t_stt:.3e} s"
    );

    // Circuit layer: a channel current pulse through the three-terminal
    // element must flip the free layer to Parallel.
    let i_write = 1.5 * sot.critical_current();
    let v_write = i_write * sot.channel_resistance();
    let mut nl = Netlist::new();
    nl.add_vsource(
        "vw",
        "wr",
        "0",
        Waveform::pulse(0.0, v_write, 0.2e-9, 0.02e-9, 0.02e-9, 2e-9, 0.0),
    )
    .expect("vsource");
    nl.add_mtj_sot(
        "x1",
        "rd",
        "wr",
        "0",
        &stack,
        &params,
        MtjState::Antiparallel,
    )
    .expect("sot element");
    let res = Transient::new(&nl)
        .expect("transient setup")
        .run(&TransientOptions::new(0.01e-9, 3e-9))
        .expect("transient run");
    assert!(
        !res.events().is_empty(),
        "SOT channel pulse never switched the junction"
    );
    println!(
        "sot      : channel write {:.0} ps vs STT {:.1} ns at 1.5x overdrive | {} switch event(s)",
        t_sot * 1e12,
        t_stt * 1e9,
        res.events().len()
    );
}

/// One Parsec-like kernel on the big.LITTLE platform (system layer).
fn gemsim_smoke() {
    let _span = mss_obs::span("mc_smoke.gemsim");
    let mut cfg = SystemConfig::big_little_default();
    cfg.sample_accesses_per_thread = 8_000;
    let sys = System::new(cfg).expect("system");
    let report = sys.run(&Kernel::bodytrack(), 1).expect("kernel run");
    println!(
        "gemsim   : {} in {:.3} ms simulated, {} DRAM reads",
        report.kernel,
        report.runtime_seconds * 1e3,
        report.dram_reads
    );
}

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4000);
    println!("== mc_smoke: {samples} samples x 64-bit words, N45 ==");
    vaet_smoke(samples);
    llg_smoke();
    spice_smoke();
    sot_smoke();
    gemsim_smoke();

    mss_bench::write_obs_artifacts("mc_smoke");
}
