//! CI smoke benchmark: a small Monte Carlo through the `mss-exec` runtime,
//! printing sample throughput at one thread and at the environment's thread
//! count. Designed to finish well under 30 s.
//!
//! ```text
//! cargo run --release -p mss-bench --bin mc_smoke
//! MSS_THREADS=8 cargo run --release -p mss-bench --bin mc_smoke -- 20000
//! ```
//!
//! The optional argument overrides the sample count (default 4000).

use mss_bench::standard_context;
use mss_exec::ParallelConfig;
use mss_pdk::tech::TechNode;
use mss_vaet::montecarlo::{run_with_stats, MonteCarloOptions};

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4000);
    let ctx = standard_context(TechNode::N45);
    let opts = MonteCarloOptions {
        samples,
        seed: 0x5EED_C0DE,
        word_bits: Some(64),
    };

    println!("== mc_smoke: {samples} samples x 64-bit words, N45 ==");
    let serial_cfg = ParallelConfig::serial();
    let (serial_report, serial_stats) =
        run_with_stats(&ctx, &opts, &serial_cfg).expect("serial Monte Carlo");
    println!(
        "serial   : {}",
        serial_stats.to_table().lines().next().unwrap_or("")
    );

    let par_cfg = ParallelConfig::from_env();
    let (par_report, par_stats) =
        run_with_stats(&ctx, &opts, &par_cfg).expect("parallel Monte Carlo");
    print!("parallel : {}", par_stats.to_table());

    assert_eq!(
        serial_report, par_report,
        "determinism violation: parallel report diverged from serial"
    );
    let speedup = par_stats.samples_per_second() / serial_stats.samples_per_second().max(1e-9);
    println!(
        "speedup {speedup:.2}x at {} threads | reports bit-identical: yes",
        par_stats.threads
    );
}
