//! Ablation benches for the design choices DESIGN.md §7 calls out:
//! integrator scheme, ECC strength, Monte Carlo depth and cache geometry.
//! Timed with the in-tree harness (`mss_bench::harness`, no Criterion).

use std::hint::black_box;

use mss_bench::harness::Harness;
use mss_bench::standard_context;
use mss_gemsim::cache::{Cache, CacheConfig};
use mss_gemsim::workload::{AccessStream, Kernel};
use mss_mtj::llg::{LlgOptions, LlgSimulator};
use mss_mtj::{MssDevice, MssStack};
use mss_pdk::tech::TechNode;
use mss_units::Vec3;
use mss_vaet::ecc::EccScheme;
use mss_vaet::montecarlo::{run as mc_run, MonteCarloOptions};

fn main() {
    Harness::print_header("ablations");
    let mut h = Harness::new();

    // RK4 (deterministic) vs stochastic Heun step cost for the same
    // wall-clock of simulated dynamics.
    let device = MssDevice::memory(MssStack::builder().build().unwrap());
    let sim = LlgSimulator::new(&device);
    let m0 = Vec3::from_spherical(0.4, 0.2);
    h.bench("ablation_integrator/rk4_deterministic_1ns", || {
        sim.run(
            black_box(m0),
            1e-9,
            &LlgOptions {
                thermal: false,
                ..LlgOptions::default()
            },
        )
    });
    h.bench("ablation_integrator/heun_stochastic_1ns", || {
        sim.run(
            black_box(m0),
            1e-9,
            &LlgOptions {
                thermal: true,
                seed: 3,
                ..LlgOptions::default()
            },
        )
    });

    // Margin-solve cost as ECC strength grows (stronger codes relax the
    // target so the bracketing range shifts).
    for t in [1u32, 2, 4, 8] {
        let scheme = EccScheme::bch(t, 1024);
        h.bench(&format!("ablation_ecc/allowed_bit_wer/{t}"), || {
            scheme.allowed_bit_wer(black_box(1e-18)).unwrap()
        });
    }

    // Monte Carlo cost vs sample count (σ estimates converge as 1/√N; this
    // shows the price of each doubling).
    let ctx = standard_context(TechNode::N45);
    for n in [50usize, 100, 200] {
        h.bench(&format!("ablation_mc/samples/{n}"), || {
            mc_run(
                &ctx,
                &MonteCarloOptions {
                    samples: n,
                    seed: 5,
                    word_bits: Some(128),
                },
            )
            .unwrap()
        });
    }

    // Cache-simulation throughput vs associativity (the LRU search is the
    // inner loop of every MAGPIE run).
    for assoc in [2u32, 8, 16] {
        let cfg = CacheConfig {
            name: format!("l2_{assoc}w"),
            capacity: 1 << 20,
            associativity: assoc,
            line_bytes: 64,
            read_latency: 1e-9,
            write_latency: 1e-9,
            read_energy: 0.0,
            write_energy: 0.0,
            leakage_power: 0.0,
        };
        let kernel = Kernel::freqmine();
        h.bench(&format!("ablation_cache/associativity/{assoc}"), || {
            let mut cache = Cache::new(cfg.clone()).unwrap();
            let mut stream = AccessStream::new(&kernel, 0, 9);
            for _ in 0..20_000 {
                let a = stream.next_access();
                cache.access(a.address, a.write);
            }
            black_box(cache.stats().miss_ratio())
        });
    }
}
