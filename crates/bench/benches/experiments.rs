//! Criterion benches: one group per paper experiment (see DESIGN.md §4).
//!
//! These measure the cost of regenerating each table/figure; the printed
//! *data* comes from the `src/bin/*` harnesses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mss_bench::{fig9_periods, standard_context, FIG7_TARGETS, FIG8_TARGET};
use mss_core::flow::{MagpieFlow, MagpieInputs};
use mss_core::scenario::Scenario;
use mss_gemsim::workload::Kernel;
use mss_mtj::llg::{LlgOptions, LlgSimulator};
use mss_mtj::{MssDevice, MssStack};
use mss_pdk::charlib::characterize;
use mss_pdk::tech::TechNode;
use mss_units::Vec3;
use mss_vaet::ecc::figure8;
use mss_vaet::margins::figure7;
use mss_vaet::montecarlo::{run as mc_run, MonteCarloOptions};
use mss_vaet::read::figure9;

fn bench_table1(c: &mut Criterion) {
    let ctx = standard_context(TechNode::N45);
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("monte_carlo_200x256", |b| {
        b.iter(|| {
            mc_run(
                &ctx,
                &MonteCarloOptions {
                    samples: 200,
                    seed: 1,
                    word_bits: Some(256),
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let ctx = standard_context(TechNode::N45);
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("margin_solve_3_targets", |b| {
        b.iter(|| figure7(&ctx, black_box(&FIG7_TARGETS)).unwrap())
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let ctx = standard_context(TechNode::N45);
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("ecc_sweep_t0_to_t4", |b| {
        b.iter(|| figure8(&ctx, black_box(FIG8_TARGET), 4).unwrap())
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let ctx = standard_context(TechNode::N45);
    let periods = fig9_periods();
    c.bench_function("fig9/read_disturb_sweep", |b| {
        b.iter(|| figure9(&ctx, black_box(&periods)))
    });
}

fn bench_fig11_12(c: &mut Criterion) {
    // The full MAGPIE flow with a reduced sample cap (the shape generator
    // uses 250k; benching uses 20k to keep iteration time sane).
    let flow = MagpieFlow::new(MagpieInputs {
        node: TechNode::N45,
        kernels: vec![Kernel::bodytrack()],
        scenarios: Scenario::ALL.to_vec(),
        seed: 1,
        sample_cap: 20_000,
    })
    .expect("flow");
    let mut g = c.benchmark_group("fig11_12");
    g.sample_size(10);
    g.bench_function("magpie_flow_1_kernel_4_scenarios", |b| {
        b.iter(|| flow.run().unwrap())
    });
    g.finish();
}

fn bench_spice_char(c: &mut Criterion) {
    // E-C1: the circuit-level characterisation flow.
    let stack = MssStack::builder().build().unwrap();
    let mut g = c.benchmark_group("spice_char");
    g.sample_size(10);
    g.bench_function("characterize_45nm", |b| {
        b.iter(|| characterize(TechNode::N45, black_box(&stack)).unwrap())
    });
    g.finish();
}

fn bench_modes(c: &mut Criterion) {
    let stack = MssStack::builder().build().unwrap();
    let mut g = c.benchmark_group("mss_modes");
    // E-M1: analytic switching solve.
    let sw = mss_mtj::switching::SwitchingModel::new(&stack);
    g.bench_function("memory_pulse_for_wer", |b| {
        b.iter(|| sw.pulse_for_wer(black_box(1e-15), 2.5 * sw.critical_current()).unwrap())
    });
    // E-M2: sensor equilibrium solve.
    let sensor = MssDevice::sensor(stack.clone()).unwrap();
    let h = 0.3 * sensor.sensor_linear_range();
    g.bench_function("sensor_equilibrium", |b| {
        b.iter(|| sensor.equilibrium_mz(black_box(h)).unwrap())
    });
    // E-M3: oscillator ring-down (1 ns of LLG).
    let osc = MssDevice::oscillator(stack);
    let sim = LlgSimulator::new(&osc);
    let m0 = Vec3::from_spherical(0.7, 0.1);
    g.sample_size(20);
    g.bench_function("oscillator_llg_1ns", |b| {
        b.iter(|| sim.run(black_box(m0), 1e-9, &LlgOptions::default()))
    });
    g.finish();
}

criterion_group!(
    experiments,
    bench_table1,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig11_12,
    bench_spice_char,
    bench_modes
);
criterion_main!(experiments);
