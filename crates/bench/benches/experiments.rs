//! Benches: one group per paper experiment (see DESIGN.md §4), timed with
//! the in-tree harness (`mss_bench::harness`, no Criterion).
//!
//! These measure the cost of regenerating each table/figure; the printed
//! *data* comes from the `src/bin/*` harnesses.

use std::hint::black_box;

use mss_bench::harness::Harness;
use mss_bench::{fig9_periods, standard_context, FIG7_TARGETS, FIG8_TARGET};
use mss_core::flow::{MagpieFlow, MagpieInputs};
use mss_core::scenario::Scenario;
use mss_gemsim::workload::Kernel;
use mss_mtj::llg::{LlgOptions, LlgSimulator};
use mss_mtj::{MssDevice, MssStack};
use mss_pdk::charlib::characterize;
use mss_pdk::tech::TechNode;
use mss_units::Vec3;
use mss_vaet::ecc::figure8;
use mss_vaet::margins::figure7;
use mss_vaet::montecarlo::{run as mc_run, MonteCarloOptions};
use mss_vaet::read::figure9;

fn main() {
    Harness::print_header("experiments");
    let mut h = Harness::new();
    let ctx = standard_context(TechNode::N45);

    h.bench("table1/monte_carlo_200x256", || {
        mc_run(
            &ctx,
            &MonteCarloOptions {
                samples: 200,
                seed: 1,
                word_bits: Some(256),
            },
        )
        .unwrap()
    });

    h.bench("fig7/margin_solve_3_targets", || {
        figure7(&ctx, black_box(&FIG7_TARGETS)).unwrap()
    });

    h.bench("fig8/ecc_sweep_t0_to_t4", || {
        figure8(&ctx, black_box(FIG8_TARGET), 4).unwrap()
    });

    let periods = fig9_periods();
    h.bench("fig9/read_disturb_sweep", || {
        figure9(&ctx, black_box(&periods))
    });

    // The full MAGPIE flow with a reduced sample cap (the shape generator
    // uses 250k; benching uses 20k to keep iteration time sane).
    let flow = MagpieFlow::new(MagpieInputs {
        node: TechNode::N45,
        kernels: vec![Kernel::bodytrack()],
        scenarios: Scenario::ALL.to_vec(),
        seed: 1,
        sample_cap: 20_000,
        ..MagpieInputs::defaults()
    })
    .expect("flow");
    h.bench("fig11_12/magpie_flow_1_kernel_4_scenarios", || {
        flow.run().unwrap()
    });

    // E-C1: the circuit-level characterisation flow.
    let stack = MssStack::builder().build().unwrap();
    h.bench("spice_char/characterize_45nm", || {
        characterize(TechNode::N45, black_box(&stack)).unwrap()
    });

    // E-M1: analytic switching solve.
    let sw = mss_mtj::switching::SwitchingModel::new(&stack);
    h.bench("mss_modes/memory_pulse_for_wer", || {
        sw.pulse_for_wer(black_box(1e-15), 2.5 * sw.critical_current())
            .unwrap()
    });

    // E-M2: sensor equilibrium solve.
    let sensor = MssDevice::sensor(stack.clone()).unwrap();
    let h_field = 0.3 * sensor.sensor_linear_range();
    h.bench("mss_modes/sensor_equilibrium", || {
        sensor.equilibrium_mz(black_box(h_field)).unwrap()
    });

    // E-M3: oscillator ring-down (1 ns of LLG).
    let osc = MssDevice::oscillator(stack);
    let sim = LlgSimulator::new(&osc);
    let m0 = Vec3::from_spherical(0.7, 0.1);
    h.bench("mss_modes/oscillator_llg_1ns", || {
        sim.run(black_box(m0), 1e-9, &LlgOptions::default())
    });
}
