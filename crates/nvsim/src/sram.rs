//! SRAM (6T) cell model derived from a CMOS technology card.
//!
//! The MAGPIE comparison needs SRAM arrays as the reference technology
//! (the paper's Full-SRAM scenario), so the estimator models 6T cells from
//! the same CMOS card the STT-MRAM periphery uses.

use mss_pdk::tech::TechParams;

/// Cell-level parameters of a 6T SRAM bit cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramCell {
    /// Cell area in m².
    pub area: f64,
    /// Cell read current (bit-line discharge), amperes.
    pub read_current: f64,
    /// Time for the cell to develop a sense-able bit-line differential,
    /// seconds (excluding bit-line RC, which the array model adds).
    pub access_time: f64,
    /// Time to overpower the cell feedback during a write, seconds.
    pub write_time: f64,
    /// Energy dissipated inside the cell per access, joules.
    pub access_energy: f64,
    /// Static leakage per cell, amperes.
    pub leakage: f64,
}

impl SramCell {
    /// Derives the 6T cell from a technology card.
    pub fn from_tech(tech: &TechParams) -> Self {
        let w_access = 1.5 * tech.min_width;
        // Discharge current of the access+driver stack at full swing.
        let read_current = 0.7 * tech.nmos_sat_current(w_access);
        // ~100 mV of differential on the local bit-line capacitance.
        let c_bl_local = 4.0 * tech.junction_cap(w_access);
        let access_time = (c_bl_local * 0.1) / read_current + tech.fo4_delay;
        let write_time = 2.0 * tech.fo4_delay;
        let access_energy = c_bl_local * tech.vdd * tech.vdd + 2.0 * tech.inv_energy;
        // Two effective leakage paths per 6T cell at off-state
        // (leak_per_width is the off-state figure of the technology card).
        let leakage = 2.0 * tech.leakage(tech.min_width);
        Self {
            area: tech.sram_cell_area(),
            read_current,
            access_time,
            write_time,
            access_energy,
            leakage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_pdk::tech::TechNode;

    #[test]
    fn sram_cell_is_fast_and_leaky() {
        let t = TechParams::node(TechNode::N45);
        let c = SramCell::from_tech(&t);
        // Sub-nanosecond intrinsic access.
        assert!(c.access_time < 0.5e-9, "access = {}", c.access_time);
        assert!(c.write_time < 0.5e-9);
        // Non-zero static leakage (the STT cell's is ~0).
        assert!(c.leakage > 0.0);
        assert!(c.access_energy > 0.0);
    }

    #[test]
    fn leakage_is_worse_at_smaller_node() {
        let c45 = SramCell::from_tech(&TechParams::node(TechNode::N45));
        let c65 = SramCell::from_tech(&TechParams::node(TechNode::N65));
        assert!(c45.leakage > c65.leakage * 0.9);
    }

    #[test]
    fn area_tracks_feature_size() {
        let c45 = SramCell::from_tech(&TechParams::node(TechNode::N45));
        let c65 = SramCell::from_tech(&TechParams::node(TechNode::N65));
        assert!(c45.area < c65.area);
    }
}
