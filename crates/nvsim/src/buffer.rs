//! Write-buffer design optimisation.
//!
//! The paper lists "optimization settings (e.g. buffer design optimization)"
//! among VAET-STT's features. STT-MRAM's asymmetric (slow-write) array wants
//! a small write buffer in front of it: writes are absorbed at SRAM speed
//! and drained at the array's write latency; only when the buffer fills does
//! the requester stall.
//!
//! The model is a discrete M/D/1/N queue: writes arrive Bernoulli per cycle
//! with probability `λ` (the write intensity), the server drains one entry
//! every `d` cycles (the array write latency), and the buffer holds `N`
//! entries. The stationary occupancy distribution gives the stall (full)
//! probability; the area cost is `N` SRAM-word equivalents.

use crate::NvsimError;

/// A candidate write-buffer design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteBufferDesign {
    /// Buffer depth in entries.
    pub depth: u32,
    /// Probability an arriving write finds the buffer full (stalls).
    pub stall_probability: f64,
    /// Mean buffer occupancy, entries.
    pub mean_occupancy: f64,
    /// Effective write latency seen by the requester, cycles:
    /// `1 + P(full)·d` (a hit in the buffer is one cycle; a full buffer
    /// exposes the drain time).
    pub effective_write_cycles: f64,
    /// Area cost in SRAM-word equivalents (depth × word).
    pub area_words: u32,
}

/// Solves the stationary occupancy of the discrete queue by fixed-point
/// iteration over the embedded Markov chain.
///
/// `arrival` is the per-cycle write probability (0..1), `drain_cycles` the
/// deterministic service time, `depth` the capacity.
///
/// # Errors
///
/// [`NvsimError::InvalidOrganization`] for out-of-range parameters.
pub fn evaluate_buffer(
    arrival: f64,
    drain_cycles: f64,
    depth: u32,
) -> Result<WriteBufferDesign, NvsimError> {
    if !(0.0..1.0).contains(&arrival) || drain_cycles < 1.0 || depth == 0 {
        return Err(NvsimError::InvalidOrganization {
            reason: format!(
                "buffer parameters out of range: arrival {arrival}, drain {drain_cycles}, depth {depth}"
            ),
        });
    }
    // Per-cycle service completion probability for the deterministic drain,
    // matched on the mean (geometric approximation of the D server).
    let mu = 1.0 / drain_cycles;
    let n = depth as usize;
    // Birth–death chain on occupancy 0..=n.
    //   up-rate   λ(1-μ) (arrive, no completion)
    //   down-rate μ(1-λ) (complete, no arrival)
    let up = arrival * (1.0 - mu);
    let down = mu * (1.0 - arrival);
    if down <= 0.0 {
        return Err(NvsimError::InvalidOrganization {
            reason: "buffer can never drain (mu*(1-lambda) = 0)".to_string(),
        });
    }
    let rho = up / down;
    // Stationary distribution pi_k ∝ rho^k (truncated geometric).
    let mut pis = Vec::with_capacity(n + 1);
    let mut acc = 0.0;
    for k in 0..=n {
        let p = rho.powi(k as i32);
        pis.push(p);
        acc += p;
    }
    for p in &mut pis {
        *p /= acc;
    }
    let stall_probability = pis[n];
    let mean_occupancy: f64 = pis.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
    Ok(WriteBufferDesign {
        depth,
        stall_probability,
        mean_occupancy,
        effective_write_cycles: 1.0 + stall_probability * drain_cycles,
        area_words: depth,
    })
}

/// Finds the smallest buffer depth whose stall probability is at or below
/// `target_stall`, searching up to `max_depth`.
///
/// # Errors
///
/// [`NvsimError::NoFeasibleDesign`] when even `max_depth` entries cannot
/// reach the target (the array is oversubscribed: `λ·d ≥ 1`).
pub fn size_buffer(
    arrival: f64,
    drain_cycles: f64,
    target_stall: f64,
    max_depth: u32,
) -> Result<WriteBufferDesign, NvsimError> {
    for depth in 1..=max_depth {
        let d = evaluate_buffer(arrival, drain_cycles, depth)?;
        if d.stall_probability <= target_stall {
            return Ok(d);
        }
    }
    Err(NvsimError::NoFeasibleDesign)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_buffers_stall_less() {
        let mut last = 1.0;
        for depth in [1, 2, 4, 8, 16] {
            let d = evaluate_buffer(0.05, 10.0, depth).unwrap();
            assert!(d.stall_probability < last);
            assert!((0.0..=1.0).contains(&d.stall_probability));
            last = d.stall_probability;
        }
    }

    #[test]
    fn light_load_is_nearly_free() {
        // 1% write intensity into a 10-cycle drain with 8 entries: stalls
        // are negligible and the effective latency is ~1 cycle.
        let d = evaluate_buffer(0.01, 10.0, 8).unwrap();
        assert!(d.stall_probability < 1e-6, "stall {}", d.stall_probability);
        assert!(d.effective_write_cycles < 1.01);
    }

    #[test]
    fn oversubscription_saturates() {
        // lambda*d > 1: the server cannot keep up; the buffer is almost
        // always full regardless of depth.
        let d = evaluate_buffer(0.5, 10.0, 16).unwrap();
        assert!(d.stall_probability > 0.5, "stall {}", d.stall_probability);
        assert!(d.mean_occupancy > 12.0);
    }

    #[test]
    fn sizing_finds_minimal_depth() {
        let sized = size_buffer(0.05, 10.0, 1e-6, 64).unwrap();
        assert!(sized.stall_probability <= 1e-6);
        if sized.depth > 1 {
            let smaller = evaluate_buffer(0.05, 10.0, sized.depth - 1).unwrap();
            assert!(smaller.stall_probability > 1e-6);
        }
        // Oversubscribed requests are infeasible.
        assert_eq!(
            size_buffer(0.5, 10.0, 1e-6, 32).unwrap_err(),
            NvsimError::NoFeasibleDesign
        );
    }

    #[test]
    fn faster_drain_needs_less_buffering() {
        let slow = size_buffer(0.05, 12.0, 1e-9, 64).unwrap();
        let fast = size_buffer(0.05, 4.0, 1e-9, 64).unwrap();
        assert!(fast.depth <= slow.depth);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(evaluate_buffer(1.5, 10.0, 4).is_err());
        assert!(evaluate_buffer(0.1, 0.5, 4).is_err());
        assert!(evaluate_buffer(0.1, 10.0, 0).is_err());
    }

    #[test]
    fn mean_occupancy_grows_with_load() {
        let light = evaluate_buffer(0.02, 10.0, 16).unwrap();
        let heavy = evaluate_buffer(0.08, 10.0, 16).unwrap();
        assert!(heavy.mean_occupancy > light.mean_occupancy);
    }
}
