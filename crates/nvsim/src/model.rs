//! The array estimator: organisation + cell model → latency/energy/area.
//!
//! Modelling approach (the NVSim recipe):
//!
//! - **decoders** — logical-effort gate chains, `log₂(rows)` stages at
//!   1.5 FO4 each plus a 2 FO4 word-line driver;
//! - **word/bit lines** — distributed Elmore RC (`0.69·R·C/2`) with wire
//!   parasitics from the technology card plus per-cell gate/junction loads;
//! - **global routing** — repeated wires at `√(2·r·c·FO4)` seconds per
//!   metre, H-tree length `√N_sub·subarray_edge`;
//! - **cells** — the characterised STT-MRAM [`CellLibrary`] or the derived
//!   derived [`crate::sram::SramCell`];
//! - **area** — cell matrix plus fixed-pitch decoder/sense strips per
//!   subarray (25 F and 35 F respectively).

use mss_pdk::charlib::{CellLibrary, SotCellLibrary};
use mss_pdk::tech::TechParams;

use crate::config::{MemoryConfig, MemoryKind};
use crate::sram::SramCell;
use crate::NvsimError;

/// Which cell technology populates the array.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoryTechnology {
    /// 6T SRAM derived from the CMOS card.
    Sram,
    /// STT-MRAM with a characterised 1T-1MTJ cell library.
    SttMram(CellLibrary),
    /// SOT-MRAM with a characterised three-terminal cell library: the
    /// write current runs through the heavy-metal channel on a separate
    /// write path, so the read- and write-path peripheries are sized
    /// independently.
    SotMram(SotCellLibrary),
}

impl MemoryTechnology {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            MemoryTechnology::Sram => "SRAM",
            MemoryTechnology::SttMram(_) => "STT-MRAM",
            MemoryTechnology::SotMram(_) => "SOT-MRAM",
        }
    }
}

/// Latency contributions of one access path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyBreakdown {
    /// Row-decoder chain.
    pub decoder: f64,
    /// Word-line RC + driver.
    pub wordline: f64,
    /// Bit-line RC.
    pub bitline: f64,
    /// Cell access (switching for writes, signal development for reads).
    pub cell: f64,
    /// Sense amplifier / write-driver stage.
    pub sense: f64,
    /// Global routing (H-tree) and output mux.
    pub routing: f64,
}

impl LatencyBreakdown {
    /// Sum of all contributions.
    pub fn total(&self) -> f64 {
        self.decoder + self.wordline + self.bitline + self.cell + self.sense + self.routing
    }
}

/// Estimated array metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayMetrics {
    /// Read access latency, seconds.
    pub read_latency: f64,
    /// Write access latency, seconds.
    pub write_latency: f64,
    /// Energy per read access (one word), joules.
    pub read_energy: f64,
    /// Energy per write access (one word), joules.
    pub write_energy: f64,
    /// Static leakage power of the whole macro, watts.
    pub leakage_power: f64,
    /// Total silicon area, m².
    pub area: f64,
    /// Read-path latency decomposition.
    pub read_breakdown: LatencyBreakdown,
    /// Write-path latency decomposition.
    pub write_breakdown: LatencyBreakdown,
}

impl mss_pipe::StableHash for MemoryTechnology {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        match self {
            MemoryTechnology::Sram => h.write_u8(0),
            MemoryTechnology::SttMram(lib) => {
                h.write_u8(1);
                lib.stable_hash(h);
            }
            MemoryTechnology::SotMram(lib) => {
                h.write_u8(2);
                lib.stable_hash(h);
            }
        }
    }
}

impl mss_pipe::StableHash for LatencyBreakdown {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_f64(self.decoder);
        h.write_f64(self.wordline);
        h.write_f64(self.bitline);
        h.write_f64(self.cell);
        h.write_f64(self.sense);
        h.write_f64(self.routing);
    }
}

impl mss_pipe::StableHash for ArrayMetrics {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_f64(self.read_latency);
        h.write_f64(self.write_latency);
        h.write_f64(self.read_energy);
        h.write_f64(self.write_energy);
        h.write_f64(self.leakage_power);
        h.write_f64(self.area);
        self.read_breakdown.stable_hash(h);
        self.write_breakdown.stable_hash(h);
    }
}

impl mss_pipe::Artifact for ArrayMetrics {
    const KIND: &'static str = "array-metrics";
    const VERSION: u32 = 1;

    fn encode(&self) -> String {
        fn breakdown(
            line: mss_pipe::codec::JsonLine,
            p: &str,
            b: &LatencyBreakdown,
        ) -> mss_pipe::codec::JsonLine {
            line.f64_bits(&format!("{p}_decoder"), b.decoder)
                .f64_bits(&format!("{p}_wordline"), b.wordline)
                .f64_bits(&format!("{p}_bitline"), b.bitline)
                .f64_bits(&format!("{p}_cell"), b.cell)
                .f64_bits(&format!("{p}_sense"), b.sense)
                .f64_bits(&format!("{p}_routing"), b.routing)
        }
        let line = mss_pipe::codec::JsonLine::new()
            .f64_bits("read_latency", self.read_latency)
            .f64_bits("write_latency", self.write_latency)
            .f64_bits("read_energy", self.read_energy)
            .f64_bits("write_energy", self.write_energy)
            .f64_bits("leakage_power", self.leakage_power)
            .f64_bits("area", self.area);
        let line = breakdown(line, "rb", &self.read_breakdown);
        breakdown(line, "wb", &self.write_breakdown).finish()
    }

    fn decode(payload: &str) -> Option<Self> {
        use mss_pipe::codec::{get_f64_bits, parse_object};
        let map = parse_object(payload.trim_end())?;
        let breakdown = |p: &str| -> Option<LatencyBreakdown> {
            Some(LatencyBreakdown {
                decoder: get_f64_bits(&map, &format!("{p}_decoder"))?,
                wordline: get_f64_bits(&map, &format!("{p}_wordline"))?,
                bitline: get_f64_bits(&map, &format!("{p}_bitline"))?,
                cell: get_f64_bits(&map, &format!("{p}_cell"))?,
                sense: get_f64_bits(&map, &format!("{p}_sense"))?,
                routing: get_f64_bits(&map, &format!("{p}_routing"))?,
            })
        };
        Some(Self {
            read_latency: get_f64_bits(&map, "read_latency")?,
            write_latency: get_f64_bits(&map, "write_latency")?,
            read_energy: get_f64_bits(&map, "read_energy")?,
            write_energy: get_f64_bits(&map, "write_energy")?,
            leakage_power: get_f64_bits(&map, "leakage_power")?,
            area: get_f64_bits(&map, "area")?,
            read_breakdown: breakdown("rb")?,
            write_breakdown: breakdown("wb")?,
        })
    }
}

/// Geometry of one subarray under a given cell technology.
struct SubarrayGeometry {
    wl_len: f64,
    bl_len: f64,
}

fn geometry(cfg: &MemoryConfig, cell_area: f64) -> SubarrayGeometry {
    let pitch = cell_area.sqrt();
    SubarrayGeometry {
        wl_len: cfg.subarray_cols as f64 * pitch,
        bl_len: cfg.subarray_rows as f64 * pitch,
    }
}

/// Repeated-wire delay constant, seconds per metre.
fn wire_delay_per_len(tech: &TechParams) -> f64 {
    (2.0 * tech.wire_res_per_len * tech.wire_cap_per_len * tech.fo4_delay).sqrt()
}

/// Estimates the metrics of a memory macro.
///
/// # Errors
///
/// [`NvsimError::InvalidCellModel`] when a library value is unusable.
/// Cache configurations recursively estimate their tag array and fold it in.
pub fn estimate(
    tech: &TechParams,
    cfg: &MemoryConfig,
    technology: &MemoryTechnology,
) -> Result<ArrayMetrics, NvsimError> {
    let mut data = estimate_flat(tech, cfg, technology)?;
    if let MemoryKind::Cache { associativity, .. } = cfg.kind {
        // Tag array: SRAM in all scenarios (the paper replaces only the data
        // arrays), organised as sets x (assoc * tag bits).
        let sets = cfg.cache_sets().expect("cache has sets");
        // Pad the tag word to a byte multiple so the capacity stays
        // expressible in bytes and divisible by the word.
        let tag_word = (cfg.tag_bits() * associativity).div_ceil(8) * 8;
        let tag_bits_total = sets * tag_word as u64;
        // Shrink the subarray until it fits inside the (possibly tiny) tag
        // array of an L1-class cache.
        let mut rows = (sets.min(512) as u32).next_power_of_two();
        let mut cols = (tag_word).next_power_of_two().clamp(64, 512);
        while (rows as u64) * (cols as u64) > tag_bits_total && rows > 8 {
            rows /= 2;
        }
        while (rows as u64) * (cols as u64) > tag_bits_total && cols > 8 {
            cols /= 2;
        }
        let tag_cfg =
            MemoryConfig::new(tag_bits_total / 8, tag_word, 1, rows, cols, MemoryKind::Ram)
                .map_err(|e| NvsimError::InvalidOrganization {
                    reason: format!("tag array organisation failed: {e}"),
                })?;
        let tag = estimate_flat(tech, &tag_cfg, &MemoryTechnology::Sram)?;
        let compare = 2.0 * tech.fo4_delay;
        // Parallel tag+data lookup; way-select after the slower of the two.
        data.read_latency = data.read_latency.max(tag.read_latency) + compare;
        data.write_latency = data.write_latency.max(tag.read_latency) + compare;
        data.read_energy += tag.read_energy;
        data.write_energy += tag.read_energy + tag.write_energy / associativity as f64;
        data.leakage_power += tag.leakage_power;
        data.area += tag.area;
        data.read_breakdown.routing += compare;
        data.write_breakdown.routing += compare;
    }
    Ok(data)
}

/// [`estimate`] through the stage pipeline: the result is memoized in
/// `cache` under [`Stage::EstimateArray`](mss_pipe::Stage) keyed by the
/// structural hash of the full `(tech, cfg, technology)` input, so design
/// sweeps and multi-scenario flows estimate each distinct organisation once.
///
/// # Errors
///
/// See [`estimate`]; cache problems are never errors.
pub fn estimate_cached(
    tech: &TechParams,
    cfg: &MemoryConfig,
    technology: &MemoryTechnology,
    cache: &mss_pipe::PipeCache,
) -> Result<std::sync::Arc<ArrayMetrics>, NvsimError> {
    let key = mss_pipe::digest_of(&(tech, cfg, technology));
    cache.get_or_compute_artifact(mss_pipe::Stage::EstimateArray, &key, || {
        estimate(tech, cfg, technology)
    })
}

fn estimate_flat(
    tech: &TechParams,
    cfg: &MemoryConfig,
    technology: &MemoryTechnology,
) -> Result<ArrayMetrics, NvsimError> {
    match technology {
        MemoryTechnology::Sram => {
            let cell = SramCell::from_tech(tech);
            estimate_with_cell(
                tech,
                cfg,
                CellNumbers {
                    area: cell.area,
                    read_cell_latency: cell.access_time,
                    write_cell_latency: cell.write_time,
                    read_cell_energy: cell.access_energy,
                    write_cell_energy: cell.access_energy,
                    sense_latency: 2.0 * tech.fo4_delay,
                    cell_leakage: cell.leakage,
                    read_access_gate_width: 1.5 * tech.min_width,
                    write_access_gate_width: 1.5 * tech.min_width,
                },
            )
        }
        MemoryTechnology::SttMram(lib) => {
            for (name, v) in [
                ("write_latency", lib.write.latency),
                ("read_latency", lib.read.latency),
                ("cell_area", lib.cell_area),
            ] {
                if !(v.is_finite() && v > 0.0) {
                    return Err(NvsimError::InvalidCellModel {
                        parameter: match name {
                            "write_latency" => "write_latency",
                            "read_latency" => "read_latency",
                            _ => "cell_area",
                        },
                        value: v,
                    });
                }
            }
            estimate_with_cell(
                tech,
                cfg,
                CellNumbers {
                    area: lib.cell_area,
                    read_cell_latency: lib.read.latency,
                    write_cell_latency: lib.write.latency,
                    read_cell_energy: lib.read.energy,
                    write_cell_energy: lib.write.energy,
                    sense_latency: 2.0 * tech.fo4_delay,
                    cell_leakage: lib.leakage,
                    read_access_gate_width: lib.access_width,
                    write_access_gate_width: lib.access_width,
                },
            )
        }
        MemoryTechnology::SotMram(sot) => {
            let lib = &sot.base;
            for (name, v) in [
                ("write_latency", lib.write.latency),
                ("read_latency", lib.read.latency),
                ("cell_area", lib.cell_area),
            ] {
                if !(v.is_finite() && v > 0.0) {
                    return Err(NvsimError::InvalidCellModel {
                        parameter: match name {
                            "write_latency" => "write_latency",
                            "read_latency" => "read_latency",
                            _ => "cell_area",
                        },
                        value: v,
                    });
                }
            }
            estimate_with_cell(
                tech,
                cfg,
                CellNumbers {
                    area: lib.cell_area,
                    read_cell_latency: lib.read.latency,
                    write_cell_latency: lib.write.latency,
                    read_cell_energy: lib.read.energy,
                    write_cell_energy: lib.write.energy,
                    sense_latency: 2.0 * tech.fo4_delay,
                    cell_leakage: lib.leakage,
                    // The read word line only selects a small sense gate;
                    // the wide channel driver loads the write word line.
                    read_access_gate_width: 4.0 * tech.feature,
                    write_access_gate_width: lib.access_width,
                },
            )
        }
    }
}

/// Technology-neutral cell numbers consumed by the shared estimator.
///
/// Read- and write-path access widths are carried separately: two-terminal
/// cells (SRAM, STT) drive the same access device on both paths, while the
/// three-terminal SOT cell selects a small read gate on the read word line
/// and the wide channel driver on a dedicated write word line.
struct CellNumbers {
    area: f64,
    read_cell_latency: f64,
    write_cell_latency: f64,
    read_cell_energy: f64,
    write_cell_energy: f64,
    sense_latency: f64,
    cell_leakage: f64,
    read_access_gate_width: f64,
    write_access_gate_width: f64,
}

fn estimate_with_cell(
    tech: &TechParams,
    cfg: &MemoryConfig,
    cell: CellNumbers,
) -> Result<ArrayMetrics, NvsimError> {
    let geo = geometry(cfg, cell.area);
    let rows = cfg.subarray_rows as f64;
    let cols = cfg.subarray_cols as f64;
    let n_sub = cfg.subarrays_per_bank() as f64 * cfg.banks as f64;
    let f = tech.feature;
    let vdd = tech.vdd;

    // --- Decoder ---
    let stages = (rows.log2()).max(1.0);
    let decoder_delay = stages * 1.5 * tech.fo4_delay + 2.0 * tech.fo4_delay;
    let decoder_energy = stages * 4.0 * tech.inv_energy;

    // --- Word lines, split per path ---
    // Two-terminal cells load both paths with the same access gate; the
    // three-terminal SOT cell has a light read word line and a heavily
    // loaded write word line.
    let r_wl = tech.wire_res_per_len * geo.wl_len;
    let c_wl_read =
        tech.wire_cap_per_len * geo.wl_len + cols * tech.gate_cap(cell.read_access_gate_width);
    let c_wl_write =
        tech.wire_cap_per_len * geo.wl_len + cols * tech.gate_cap(cell.write_access_gate_width);
    let wl_read_delay = 0.69 * 0.5 * r_wl * c_wl_read;
    let wl_write_delay = 0.69 * 0.5 * r_wl * c_wl_write;
    let wl_read_energy = c_wl_read * vdd * vdd;
    let wl_write_energy = c_wl_write * vdd * vdd;

    // --- Bit lines, split per path ---
    let r_bl = tech.wire_res_per_len * geo.bl_len;
    let c_bl_read = tech.wire_cap_per_len * geo.bl_len
        + rows * tech.junction_cap(cell.read_access_gate_width) * 0.5;
    let c_bl_write = tech.wire_cap_per_len * geo.bl_len
        + rows * tech.junction_cap(cell.write_access_gate_width) * 0.5;
    let bl_read_delay = 0.69 * 0.5 * r_bl * c_bl_read;
    let bl_write_delay = 0.69 * 0.5 * r_bl * c_bl_write;
    // Reads swing the bit line by ~0.2 V; writes swing it rail to rail.
    let bl_read_energy = c_bl_read * vdd * 0.2;
    let bl_write_energy = c_bl_write * vdd * vdd;

    // --- Global routing ---
    let edge = geo.wl_len.max(geo.bl_len);
    let global_len = n_sub.sqrt() * edge;
    let routing_delay = wire_delay_per_len(tech) * global_len;
    let routing_energy_per_bit = tech.wire_cap_per_len * global_len * vdd * vdd * 0.5;

    // --- Word mapping ---
    // A word may span several subarrays; each active subarray fires its
    // decoder, word line and the word's share of bit lines.
    let bits_per_sub = cols.min(cfg.word_bits as f64);
    let active_subs = (cfg.word_bits as f64 / bits_per_sub).ceil();

    let read_breakdown = LatencyBreakdown {
        decoder: decoder_delay,
        wordline: wl_read_delay,
        bitline: bl_read_delay,
        cell: cell.read_cell_latency,
        sense: cell.sense_latency,
        routing: routing_delay,
    };
    let write_breakdown = LatencyBreakdown {
        decoder: decoder_delay,
        wordline: wl_write_delay,
        bitline: bl_write_delay,
        cell: cell.write_cell_latency,
        sense: 2.0 * tech.fo4_delay, // write driver
        routing: routing_delay,
    };

    let word = cfg.word_bits as f64;
    let read_energy = active_subs * (decoder_energy + wl_read_energy)
        + word * (cell.read_cell_energy + bl_read_energy)
        + word * routing_energy_per_bit;
    let write_energy = active_subs * (decoder_energy + wl_write_energy)
        + word * (cell.write_cell_energy + bl_write_energy)
        + word * routing_energy_per_bit;

    // --- Leakage ---
    let total_cells = cfg.total_bits() as f64;
    let cell_leak_power = total_cells * cell.cell_leakage * vdd;
    // Peripheral strips leak per subarray (decoder + sense rows).
    let periph_leak_per_sub = (rows + cols) * tech.leakage(2.0 * tech.min_width) * 1e-3;
    let leakage_power = cell_leak_power + n_sub * periph_leak_per_sub * vdd;

    // --- Area ---
    let dec_strip = 25.0 * f;
    let sense_strip = 35.0 * f;
    let sub_area = (geo.wl_len + dec_strip) * (geo.bl_len + sense_strip);
    let area = n_sub * sub_area;

    Ok(ArrayMetrics {
        read_latency: read_breakdown.total(),
        write_latency: write_breakdown.total(),
        read_energy,
        write_energy,
        leakage_power,
        area,
        read_breakdown,
        write_breakdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_mtj::MssStack;
    use mss_pdk::charlib::characterize;
    use mss_pdk::tech::TechNode;

    fn stt_lib() -> CellLibrary {
        characterize(TechNode::N45, &MssStack::builder().build().unwrap()).unwrap()
    }

    fn tech() -> TechParams {
        TechParams::node(TechNode::N45)
    }

    #[test]
    fn sram_reads_and_writes_fast() {
        let cfg = MemoryConfig::ram(1 << 20, 64).unwrap();
        let m = estimate(&tech(), &cfg, &MemoryTechnology::Sram).unwrap();
        assert!(
            m.read_latency > 0.0 && m.read_latency < 3e-9,
            "{}",
            m.read_latency
        );
        assert!(m.write_latency < 3e-9);
        assert!(m.leakage_power > 0.0);
    }

    #[test]
    fn stt_write_much_slower_than_read() {
        let cfg = MemoryConfig::ram(1 << 20, 64).unwrap();
        let m = estimate(&tech(), &cfg, &MemoryTechnology::SttMram(stt_lib())).unwrap();
        assert!(m.write_latency > 2.0 * m.read_latency);
        assert!(m.write_energy > m.read_energy);
    }

    #[test]
    fn stt_denser_and_less_leaky_than_sram() {
        let cfg = MemoryConfig::ram(1 << 20, 64).unwrap();
        let sram = estimate(&tech(), &cfg, &MemoryTechnology::Sram).unwrap();
        let stt = estimate(&tech(), &cfg, &MemoryTechnology::SttMram(stt_lib())).unwrap();
        assert!(
            stt.area < sram.area,
            "stt {} vs sram {}",
            stt.area,
            sram.area
        );
        assert!(
            stt.leakage_power < 0.3 * sram.leakage_power,
            "stt {} vs sram {}",
            stt.leakage_power,
            sram.leakage_power
        );
    }

    #[test]
    fn bigger_arrays_cost_more() {
        let lib = stt_lib();
        let small = MemoryConfig::ram(256 << 10, 64).unwrap();
        let large = MemoryConfig::ram(4 << 20, 64).unwrap();
        let ms = estimate(&tech(), &small, &MemoryTechnology::SttMram(lib.clone())).unwrap();
        let ml = estimate(&tech(), &large, &MemoryTechnology::SttMram(lib)).unwrap();
        assert!(ml.area > ms.area);
        assert!(ml.leakage_power > ms.leakage_power);
        assert!(ml.read_latency > ms.read_latency); // longer global routing
    }

    #[test]
    fn wider_word_costs_more_energy() {
        let lib = stt_lib();
        let narrow = MemoryConfig::ram(1 << 20, 64).unwrap();
        let wide =
            MemoryConfig::new(1 << 20, 512, 1, 512, 512, crate::config::MemoryKind::Ram).unwrap();
        let mn = estimate(&tech(), &narrow, &MemoryTechnology::SttMram(lib.clone())).unwrap();
        let mw = estimate(&tech(), &wide, &MemoryTechnology::SttMram(lib)).unwrap();
        assert!(mw.write_energy > 4.0 * mn.write_energy);
        assert!(mw.read_energy > 4.0 * mn.read_energy);
    }

    #[test]
    fn cache_adds_tag_overhead() {
        let lib = stt_lib();
        let ram =
            MemoryConfig::new(512 << 10, 512, 1, 512, 512, crate::config::MemoryKind::Ram).unwrap();
        let cache = MemoryConfig::cache(512 << 10, 8, 64).unwrap();
        let mr = estimate(&tech(), &ram, &MemoryTechnology::SttMram(lib.clone())).unwrap();
        let mc = estimate(&tech(), &cache, &MemoryTechnology::SttMram(lib)).unwrap();
        assert!(mc.read_energy > mr.read_energy);
        assert!(mc.area > mr.area);
        assert!(mc.read_latency >= mr.read_latency);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let cfg = MemoryConfig::ram(1 << 20, 64).unwrap();
        let m = estimate(&tech(), &cfg, &MemoryTechnology::SttMram(stt_lib())).unwrap();
        assert!((m.read_breakdown.total() - m.read_latency).abs() < 1e-15);
        // Cache compare time is folded into the breakdown too.
        let ccfg = MemoryConfig::cache(1 << 20, 8, 64).unwrap();
        let mc = estimate(&tech(), &ccfg, &MemoryTechnology::SttMram(stt_lib())).unwrap();
        assert!(mc.read_latency >= mc.read_breakdown.decoder);
    }

    #[test]
    fn write_cell_dominates_stt_write_path() {
        let cfg = MemoryConfig::ram(1 << 20, 64).unwrap();
        let m = estimate(&tech(), &cfg, &MemoryTechnology::SttMram(stt_lib())).unwrap();
        assert!(m.write_breakdown.cell > 0.5 * m.write_latency);
    }

    fn sot_lib() -> SotCellLibrary {
        mss_pdk::charlib::characterize_sot(
            TechNode::N45,
            &MssStack::builder().build().unwrap(),
            &mss_mtj::SotParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn technology_name() {
        assert_eq!(MemoryTechnology::Sram.name(), "SRAM");
        assert_eq!(MemoryTechnology::SttMram(stt_lib()).name(), "STT-MRAM");
        assert_eq!(MemoryTechnology::SotMram(sot_lib()).name(), "SOT-MRAM");
    }

    #[test]
    fn sot_array_writes_faster_than_stt() {
        let cfg = MemoryConfig::ram(1 << 20, 64).unwrap();
        let stt = estimate(&tech(), &cfg, &MemoryTechnology::SttMram(stt_lib())).unwrap();
        let sot = estimate(&tech(), &cfg, &MemoryTechnology::SotMram(sot_lib())).unwrap();
        assert!(
            sot.write_latency < stt.write_latency,
            "sot {} vs stt {}",
            sot.write_latency,
            stt.write_latency
        );
        assert!(sot.write_energy < stt.write_energy);
        // The three-terminal cell pays area for the second terminal.
        assert!(sot.area > stt.area);
    }

    #[test]
    fn sot_read_wordline_lighter_than_write_wordline() {
        let cfg = MemoryConfig::ram(1 << 20, 64).unwrap();
        let sot = estimate(&tech(), &cfg, &MemoryTechnology::SotMram(sot_lib())).unwrap();
        // The split periphery shows up as distinct per-path word-line RC.
        assert!(sot.read_breakdown.wordline < sot.write_breakdown.wordline);
        // Two-terminal STT keeps symmetric word lines.
        let stt = estimate(&tech(), &cfg, &MemoryTechnology::SttMram(stt_lib())).unwrap();
        assert_eq!(
            stt.read_breakdown.wordline.to_bits(),
            stt.write_breakdown.wordline.to_bits()
        );
    }

    #[test]
    fn sot_hash_is_disjoint_from_stt() {
        let stt = MemoryTechnology::SttMram(stt_lib());
        let sot = MemoryTechnology::SotMram(sot_lib());
        assert_ne!(mss_pipe::digest_of(&stt), mss_pipe::digest_of(&sot));
    }
}
