//! Design-space exploration over subarray organisations.
//!
//! The paper: VAET-STT "includes optimization settings (e.g. buffer design
//! optimization) and various design constraints to facilitate a
//! variation-aware design space exploration before the fabrication of the
//! actual memory chip". The nominal-level half of that lives here: sweep the
//! subarray tiling and pick the organisation minimising a target metric,
//! optionally under constraints.

use mss_exec::supervise::SupervisorConfig;
use mss_exec::{par_map, ParallelConfig, TaskFailure};
use mss_pdk::tech::TechParams;

use crate::config::MemoryConfig;
use crate::model::{estimate_cached, ArrayMetrics, MemoryTechnology};
use crate::NvsimError;

/// What the exploration minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizationTarget {
    /// Read latency.
    ReadLatency,
    /// Write latency.
    WriteLatency,
    /// Read energy per access.
    ReadEnergy,
    /// Write energy per access.
    WriteEnergy,
    /// Total area.
    Area,
    /// Leakage power.
    Leakage,
    /// Read-latency × read-energy product.
    ReadEdp,
}

impl OptimizationTarget {
    /// Extracts the scalar this target minimises.
    pub fn score(&self, m: &ArrayMetrics) -> f64 {
        match self {
            OptimizationTarget::ReadLatency => m.read_latency,
            OptimizationTarget::WriteLatency => m.write_latency,
            OptimizationTarget::ReadEnergy => m.read_energy,
            OptimizationTarget::WriteEnergy => m.write_energy,
            OptimizationTarget::Area => m.area,
            OptimizationTarget::Leakage => m.leakage_power,
            OptimizationTarget::ReadEdp => m.read_latency * m.read_energy,
        }
    }
}

/// Optional constraints a candidate must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DesignConstraints {
    /// Maximum read latency, seconds.
    pub max_read_latency: Option<f64>,
    /// Maximum write latency, seconds.
    pub max_write_latency: Option<f64>,
    /// Maximum area, m².
    pub max_area: Option<f64>,
    /// Maximum leakage power, watts.
    pub max_leakage: Option<f64>,
}

impl DesignConstraints {
    /// True when the metrics satisfy every set constraint.
    pub fn accepts(&self, m: &ArrayMetrics) -> bool {
        self.max_read_latency.is_none_or(|v| m.read_latency <= v)
            && self.max_write_latency.is_none_or(|v| m.write_latency <= v)
            && self.max_area.is_none_or(|v| m.area <= v)
            && self.max_leakage.is_none_or(|v| m.leakage_power <= v)
    }
}

/// One explored candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The organisation evaluated.
    pub config: MemoryConfig,
    /// Its estimated metrics.
    pub metrics: ArrayMetrics,
    /// The target score (lower is better).
    pub score: f64,
}

/// Result of a design-space exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// The winning candidate.
    pub best: Candidate,
    /// Every feasible candidate, sorted by ascending score.
    pub candidates: Vec<Candidate>,
}

/// Sweeps subarray tilings (powers of two, 64–2048 per side) and returns the
/// constrained optimum.
///
/// # Errors
///
/// [`NvsimError::NoFeasibleDesign`] when no tiling satisfies the
/// constraints; estimation errors propagate.
pub fn explore(
    tech: &TechParams,
    base: &MemoryConfig,
    technology: &MemoryTechnology,
    target: OptimizationTarget,
    constraints: &DesignConstraints,
) -> Result<Exploration, NvsimError> {
    explore_with(
        tech,
        base,
        technology,
        target,
        constraints,
        &ParallelConfig::from_env(),
    )
}

/// [`explore`] with an explicit thread policy: candidate tilings are
/// estimated in parallel and reduced in grid order, so the result is
/// identical at any thread count.
///
/// # Errors
///
/// Same as [`explore`].
pub fn explore_with(
    tech: &TechParams,
    base: &MemoryConfig,
    technology: &MemoryTechnology,
    target: OptimizationTarget,
    constraints: &DesignConstraints,
    exec: &ParallelConfig,
) -> Result<Exploration, NvsimError> {
    let sizes = [64u32, 128, 256, 512, 1024, 2048];
    // Tilings larger than the bank are skipped up front; the survivors are
    // the parallel work list.
    let grid: Vec<MemoryConfig> = sizes
        .iter()
        .flat_map(|&rows| sizes.iter().map(move |&cols| (rows, cols)))
        .filter_map(|(rows, cols)| base.with_subarray(rows, cols).ok())
        .collect();
    let _span = mss_obs::span("nvsim.explore");
    // Estimation runs through the stage pipeline: re-exploring the same
    // technology (across targets, constraint sets or flow scenarios) hits
    // the cache instead of re-running the RC models.
    let cache = mss_pipe::global();
    let estimated = par_map(exec, &grid, |_, cfg| {
        estimate_cached(tech, cfg, technology, &cache)
    });
    mss_obs::counter_add("nvsim.explore.candidates", estimated.len() as u64);
    let mut candidates = Vec::new();
    for (cfg, metrics) in grid.into_iter().zip(estimated) {
        let metrics = (*metrics?).clone();
        if !constraints.accepts(&metrics) {
            continue;
        }
        let score = target.score(&metrics);
        // A non-finite score (overflowed or NaN metric product) cannot be
        // ranked; treat it as infeasible rather than poisoning the sort.
        if !score.is_finite() {
            mss_obs::counter_add("nvsim.explore.nonfinite_scores", 1);
            continue;
        }
        candidates.push(Candidate {
            config: cfg,
            metrics,
            score,
        });
    }
    mss_obs::counter_add("nvsim.explore.feasible", candidates.len() as u64);
    candidates.sort_by(|a, b| a.score.total_cmp(&b.score));
    match candidates.first().cloned() {
        Some(best) => Ok(Exploration { best, candidates }),
        None => Err(NvsimError::NoFeasibleDesign),
    }
}

/// A design-space exploration that degrades gracefully: candidates whose
/// estimation panicked, failed or overran the supervisor's deadline are
/// dropped from the ranking and reported in `failures`, instead of tearing
/// down the whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedExploration {
    /// The best among the candidates that completed (the full
    /// [`Exploration`] shape, sorted by ascending score).
    pub exploration: Exploration,
    /// Grid points that produced no metrics, with the failure cause.
    pub failures: Vec<TaskFailure>,
}

/// [`explore_with`] under the sweep supervisor: each grid point is
/// estimated in an isolated supervised task, and the exploration ranks
/// whatever completed.
///
/// With healthy estimation this returns exactly the [`explore_with`]
/// result plus an empty failure list.
///
/// # Errors
///
/// [`NvsimError::NoFeasibleDesign`] when no *completed* tiling satisfies
/// the constraints (including the case where every task failed).
pub fn explore_supervised(
    tech: &TechParams,
    base: &MemoryConfig,
    technology: &MemoryTechnology,
    target: OptimizationTarget,
    constraints: &DesignConstraints,
    exec: &ParallelConfig,
    sup: &SupervisorConfig,
) -> Result<SupervisedExploration, NvsimError> {
    let sizes = [64u32, 128, 256, 512, 1024, 2048];
    let grid: Vec<MemoryConfig> = sizes
        .iter()
        .flat_map(|&rows| sizes.iter().map(move |&cols| (rows, cols)))
        .filter_map(|(rows, cols)| base.with_subarray(rows, cols).ok())
        .collect();
    let _span = mss_obs::span("nvsim.explore");
    let cache = mss_pipe::global();
    let sup = if sup.label.is_empty() {
        sup.with_label("nvsim.explore")
    } else {
        *sup
    };
    let sweep = mss_exec::supervised_map(exec, &sup, &grid, |_, cfg| {
        estimate_cached(tech, cfg, technology, &cache).map(|m| (*m).clone())
    });
    mss_obs::counter_add("nvsim.explore.candidates", grid.len() as u64);
    let mut candidates = Vec::new();
    for (cfg, metrics) in grid.iter().zip(&sweep.results) {
        let Some(metrics) = metrics else { continue };
        if !constraints.accepts(metrics) {
            continue;
        }
        let score = target.score(metrics);
        if !score.is_finite() {
            mss_obs::counter_add("nvsim.explore.nonfinite_scores", 1);
            continue;
        }
        candidates.push(Candidate {
            config: *cfg,
            metrics: metrics.clone(),
            score,
        });
    }
    mss_obs::counter_add("nvsim.explore.feasible", candidates.len() as u64);
    candidates.sort_by(|a, b| a.score.total_cmp(&b.score));
    match candidates.first().cloned() {
        Some(best) => Ok(SupervisedExploration {
            exploration: Exploration { best, candidates },
            failures: sweep.failures,
        }),
        None => Err(NvsimError::NoFeasibleDesign),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_mtj::MssStack;
    use mss_pdk::charlib::characterize;
    use mss_pdk::tech::TechNode;

    fn setup() -> (TechParams, MemoryConfig, MemoryTechnology) {
        let tech = TechParams::node(TechNode::N45);
        let cfg = MemoryConfig::ram(1 << 20, 64).unwrap();
        let lib = characterize(TechNode::N45, &MssStack::builder().build().unwrap()).unwrap();
        (tech, cfg, MemoryTechnology::SttMram(lib))
    }

    #[test]
    fn exploration_finds_a_best() {
        let (tech, cfg, technology) = setup();
        let exp = explore(
            &tech,
            &cfg,
            &technology,
            OptimizationTarget::ReadLatency,
            &DesignConstraints::default(),
        )
        .unwrap();
        assert!(!exp.candidates.is_empty());
        assert_eq!(exp.best.score, exp.candidates[0].score);
        // The best read latency really is the minimum.
        for c in &exp.candidates {
            assert!(c.metrics.read_latency + 1e-18 >= exp.best.metrics.read_latency);
        }
    }

    #[test]
    fn different_targets_can_pick_different_designs() {
        let (tech, cfg, technology) = setup();
        let lat = explore(
            &tech,
            &cfg,
            &technology,
            OptimizationTarget::ReadLatency,
            &DesignConstraints::default(),
        )
        .unwrap();
        let area = explore(
            &tech,
            &cfg,
            &technology,
            OptimizationTarget::Area,
            &DesignConstraints::default(),
        )
        .unwrap();
        // Area optimum cannot beat the latency optimum at latency.
        assert!(area.best.metrics.read_latency + 1e-18 >= lat.best.metrics.read_latency);
        assert!(lat.best.metrics.area + 1e-18 >= area.best.metrics.area);
    }

    #[test]
    fn constraints_filter_candidates() {
        let (tech, cfg, technology) = setup();
        let unconstrained = explore(
            &tech,
            &cfg,
            &technology,
            OptimizationTarget::ReadEnergy,
            &DesignConstraints::default(),
        )
        .unwrap();
        let tight = DesignConstraints {
            max_read_latency: Some(unconstrained.best.metrics.read_latency * 1.01),
            ..Default::default()
        };
        let constrained = explore(
            &tech,
            &cfg,
            &technology,
            OptimizationTarget::ReadEnergy,
            &tight,
        )
        .unwrap();
        assert!(constrained.candidates.len() <= unconstrained.candidates.len());
        for c in &constrained.candidates {
            assert!(c.metrics.read_latency <= tight.max_read_latency.unwrap());
        }
    }

    #[test]
    fn exploration_is_thread_count_invariant() {
        let (tech, cfg, technology) = setup();
        let run = |threads| {
            explore_with(
                &tech,
                &cfg,
                &technology,
                OptimizationTarget::ReadEdp,
                &DesignConstraints::default(),
                &ParallelConfig::serial().with_threads(threads),
            )
            .unwrap()
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
    }

    #[test]
    fn supervised_exploration_matches_plain_when_healthy() {
        let (tech, cfg, technology) = setup();
        let plain = explore_with(
            &tech,
            &cfg,
            &technology,
            OptimizationTarget::ReadEdp,
            &DesignConstraints::default(),
            &ParallelConfig::serial().with_threads(2),
        )
        .unwrap();
        let supervised = explore_supervised(
            &tech,
            &cfg,
            &technology,
            OptimizationTarget::ReadEdp,
            &DesignConstraints::default(),
            &ParallelConfig::serial().with_threads(2),
            &SupervisorConfig::disabled(),
        )
        .unwrap();
        assert!(supervised.failures.is_empty());
        assert_eq!(supervised.exploration, plain);
    }

    #[test]
    fn impossible_constraints_error() {
        let (tech, cfg, technology) = setup();
        let absurd = DesignConstraints {
            max_area: Some(1e-12),
            ..Default::default()
        };
        assert_eq!(
            explore(&tech, &cfg, &technology, OptimizationTarget::Area, &absurd).unwrap_err(),
            NvsimError::NoFeasibleDesign
        );
    }
}
