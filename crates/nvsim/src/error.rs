//! Error type for array estimation.

use std::fmt;

/// Errors produced while configuring or estimating a memory array.
#[derive(Debug, Clone, PartialEq)]
pub enum NvsimError {
    /// The requested organisation is inconsistent (capacity not divisible by
    /// the word width, zero banks, non-power-of-two rows, ...).
    InvalidOrganization {
        /// What is inconsistent.
        reason: String,
    },
    /// A cell-library value required by the estimator is missing or
    /// unphysical.
    InvalidCellModel {
        /// Offending parameter.
        parameter: &'static str,
        /// Its value.
        value: f64,
    },
    /// Design-space exploration found no feasible organisation.
    NoFeasibleDesign,
}

impl fmt::Display for NvsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvsimError::InvalidOrganization { reason } => {
                write!(f, "invalid array organisation: {reason}")
            }
            NvsimError::InvalidCellModel { parameter, value } => {
                write!(f, "invalid cell model: {parameter} = {value}")
            }
            NvsimError::NoFeasibleDesign => write!(f, "no feasible array organisation"),
        }
    }
}

impl std::error::Error for NvsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NvsimError::InvalidOrganization {
            reason: "zero banks".into(),
        };
        assert!(e.to_string().contains("zero banks"));
    }
}
