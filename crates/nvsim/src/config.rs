//! Memory-array organisation.

use crate::NvsimError;

/// What the array is used as (affects tag overhead and access pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// A flat random-access memory.
    Ram,
    /// A set-associative cache: adds a tag array and a way-select step.
    Cache {
        /// Associativity (ways).
        associativity: u32,
        /// Line size in bytes.
        line_bytes: u32,
    },
}

/// The organisation of one memory macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Access word width in bits.
    pub word_bits: u32,
    /// Number of banks (accessed independently; latency is per bank).
    pub banks: u32,
    /// Rows per subarray.
    pub subarray_rows: u32,
    /// Columns per subarray.
    pub subarray_cols: u32,
    /// RAM or cache.
    pub kind: MemoryKind,
}

impl mss_pipe::StableHash for MemoryKind {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        match self {
            MemoryKind::Ram => h.write_u8(0),
            MemoryKind::Cache {
                associativity,
                line_bytes,
            } => {
                h.write_u8(1);
                h.write_u32(*associativity);
                h.write_u32(*line_bytes);
            }
        }
    }
}

impl mss_pipe::StableHash for MemoryConfig {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_u64(self.capacity_bytes);
        h.write_u32(self.word_bits);
        h.write_u32(self.banks);
        h.write_u32(self.subarray_rows);
        h.write_u32(self.subarray_cols);
        self.kind.stable_hash(h);
    }
}

impl MemoryConfig {
    /// A single-bank RAM with a default 512×512 subarray tiling.
    ///
    /// # Errors
    ///
    /// [`NvsimError::InvalidOrganization`] on inconsistent parameters.
    pub fn ram(capacity_bytes: u64, word_bits: u32) -> Result<Self, NvsimError> {
        Self::new(capacity_bytes, word_bits, 1, 512, 512, MemoryKind::Ram)
    }

    /// A cache macro with a default subarray tiling.
    ///
    /// # Errors
    ///
    /// [`NvsimError::InvalidOrganization`] on inconsistent parameters.
    pub fn cache(
        capacity_bytes: u64,
        associativity: u32,
        line_bytes: u32,
    ) -> Result<Self, NvsimError> {
        Self::new(
            capacity_bytes,
            line_bytes * 8,
            1,
            512,
            512,
            MemoryKind::Cache {
                associativity,
                line_bytes,
            },
        )
    }

    /// Fully explicit constructor.
    ///
    /// # Errors
    ///
    /// [`NvsimError::InvalidOrganization`] when any of the consistency rules
    /// fail (power-of-two subarrays, capacity divisible by word, non-zero
    /// everything).
    pub fn new(
        capacity_bytes: u64,
        word_bits: u32,
        banks: u32,
        subarray_rows: u32,
        subarray_cols: u32,
        kind: MemoryKind,
    ) -> Result<Self, NvsimError> {
        let fail = |reason: String| Err(NvsimError::InvalidOrganization { reason });
        if capacity_bytes == 0 {
            return fail("capacity must be non-zero".into());
        }
        if word_bits == 0 || banks == 0 || subarray_rows == 0 || subarray_cols == 0 {
            return fail("word width, banks and subarray dimensions must be non-zero".into());
        }
        if !subarray_rows.is_power_of_two() || !subarray_cols.is_power_of_two() {
            return fail(format!(
                "subarray dimensions must be powers of two, got {subarray_rows}x{subarray_cols}"
            ));
        }
        let total_bits = capacity_bytes * 8;
        if !total_bits.is_multiple_of(word_bits as u64) {
            return fail(format!(
                "capacity {total_bits} bits is not divisible by the {word_bits}-bit word"
            ));
        }
        if !total_bits.is_multiple_of(banks as u64) {
            return fail(format!("capacity not divisible across {banks} banks"));
        }
        let bank_bits = total_bits / banks as u64;
        let sub_bits = subarray_rows as u64 * subarray_cols as u64;
        if bank_bits < sub_bits {
            return fail(format!(
                "bank of {bank_bits} bits smaller than one {subarray_rows}x{subarray_cols} subarray"
            ));
        }
        if let MemoryKind::Cache {
            associativity,
            line_bytes,
        } = kind
        {
            if associativity == 0 || !associativity.is_power_of_two() {
                return fail(format!(
                    "associativity {associativity} must be a power of two"
                ));
            }
            if line_bytes == 0 {
                return fail("line size must be non-zero".into());
            }
            if !capacity_bytes.is_multiple_of(associativity as u64 * line_bytes as u64) {
                return fail("capacity not divisible by associativity x line size".into());
            }
        }
        Ok(Self {
            capacity_bytes,
            word_bits,
            banks,
            subarray_rows,
            subarray_cols,
            kind,
        })
    }

    /// Total storage bits.
    pub fn total_bits(&self) -> u64 {
        self.capacity_bytes * 8
    }

    /// Bits per bank.
    pub fn bank_bits(&self) -> u64 {
        self.total_bits() / self.banks as u64
    }

    /// Subarrays per bank (rounded up so capacity always fits).
    pub fn subarrays_per_bank(&self) -> u64 {
        let sub_bits = self.subarray_rows as u64 * self.subarray_cols as u64;
        self.bank_bits().div_ceil(sub_bits)
    }

    /// Number of cache sets (`None` for RAM).
    pub fn cache_sets(&self) -> Option<u64> {
        match self.kind {
            MemoryKind::Ram => None,
            MemoryKind::Cache {
                associativity,
                line_bytes,
            } => Some(self.capacity_bytes / (associativity as u64 * line_bytes as u64)),
        }
    }

    /// Tag bits per line for a 48-bit physical address space (`0` for RAM).
    pub fn tag_bits(&self) -> u32 {
        match self.kind {
            MemoryKind::Ram => 0,
            MemoryKind::Cache { line_bytes, .. } => {
                let sets = self.cache_sets().expect("cache has sets");
                let offset_bits = (line_bytes as f64).log2().ceil() as u32;
                let index_bits = (sets as f64).log2().ceil() as u32;
                48u32.saturating_sub(offset_bits + index_bits)
            }
        }
    }

    /// Returns a copy with a different subarray tiling.
    ///
    /// # Errors
    ///
    /// Propagates [`MemoryConfig::new`] validation.
    pub fn with_subarray(&self, rows: u32, cols: u32) -> Result<Self, NvsimError> {
        Self::new(
            self.capacity_bytes,
            self.word_bits,
            self.banks,
            rows,
            cols,
            self.kind,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_constructor_defaults() {
        let c = MemoryConfig::ram(1 << 20, 64).unwrap();
        assert_eq!(c.total_bits(), 8 << 20);
        assert_eq!(c.banks, 1);
        assert_eq!(c.subarrays_per_bank(), (8 << 20) / (512 * 512));
        assert_eq!(c.tag_bits(), 0);
        assert!(c.cache_sets().is_none());
    }

    #[test]
    fn cache_has_tags_and_sets() {
        // 512 KiB, 8-way, 64 B lines -> 1024 sets.
        let c = MemoryConfig::cache(512 << 10, 8, 64).unwrap();
        assert_eq!(c.cache_sets(), Some(1024));
        // 48 - 6 (offset) - 10 (index) = 32 tag bits.
        assert_eq!(c.tag_bits(), 32);
    }

    #[test]
    fn rejects_inconsistencies() {
        assert!(MemoryConfig::ram(0, 64).is_err());
        assert!(MemoryConfig::ram(1 << 20, 0).is_err());
        assert!(MemoryConfig::new(1 << 20, 64, 1, 500, 512, MemoryKind::Ram).is_err());
        assert!(MemoryConfig::new(1 << 10, 64, 1, 4096, 4096, MemoryKind::Ram).is_err());
        assert!(MemoryConfig::new(
            1 << 20,
            64,
            1,
            512,
            512,
            MemoryKind::Cache {
                associativity: 3,
                line_bytes: 64
            }
        )
        .is_err());
    }

    #[test]
    fn capacity_must_divide_by_word() {
        // 800 bits is not an integral number of 64-bit words.
        assert!(MemoryConfig::ram(100, 64).is_err());
        // 1 KiB with a small explicit subarray is fine.
        assert!(MemoryConfig::new(1024, 64, 1, 64, 128, MemoryKind::Ram).is_ok());
        // But the default 512x512 subarray cannot fit in 128 bytes.
        assert!(MemoryConfig::ram(128, 64).is_err());
    }

    #[test]
    fn with_subarray_changes_tiling() {
        let c = MemoryConfig::ram(1 << 20, 64).unwrap();
        let c2 = c.with_subarray(1024, 1024).unwrap();
        assert_eq!(c2.subarrays_per_bank(), 8);
        assert!(c.with_subarray(0, 512).is_err());
    }
}
