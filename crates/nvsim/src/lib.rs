//! An NVSim-class estimator: circuit-level performance, energy and area
//! models for complete memory arrays.
//!
//! VAET-STT (the paper's Sec. III) "is built on the top of NVSim and extends
//! it to account for variability in both the bit-cell and peripheral
//! components". This crate is the NVSim layer: deterministic (nominal)
//! estimation of read/write latency, access energies, leakage and area for
//! an organised memory array, for both SRAM and STT-MRAM cells.
//!
//! - [`config`] — array organisation (capacity, word width, banks, subarray
//!   split, RAM vs cache),
//! - [`sram`] — the SRAM (6T) cell model derived from a CMOS card,
//! - [`model`] — the estimator proper (decoder chains via logical effort,
//!   Elmore word/bit-line RC, cell access, sense, drivers),
//! - [`explore`] — design-space exploration over subarray organisations
//!   under an optimisation target (the paper's "optimization settings ...
//!   to facilitate a variation-aware design space exploration"),
//! - [`buffer`] — write-buffer queueing analysis (the paper's "buffer
//!   design optimization") for the slow-write STT-MRAM array.
//!
//! # Example
//!
//! ```
//! use mss_nvsim::config::MemoryConfig;
//! use mss_nvsim::model::{estimate, MemoryTechnology};
//! use mss_pdk::tech::{TechNode, TechParams};
//!
//! # fn main() -> Result<(), mss_nvsim::NvsimError> {
//! let tech = TechParams::node(TechNode::N45);
//! let cfg = MemoryConfig::ram(1024 * 1024 / 8, 64)?; // 1 Mb array, 64-bit word
//! let sram = estimate(&tech, &cfg, &MemoryTechnology::Sram)?;
//! assert!(sram.read_latency > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod buffer;
pub mod config;
mod error;
pub mod explore;
pub mod model;
pub mod sram;

pub use error::NvsimError;
