//! Structural benchmark baselines (`BENCH_<name>.json`).
//!
//! A baseline captures the *deterministic* skeleton of a smoke-bench run —
//! every counter value and every span path with its closing count — plus
//! per-span mean times as an advisory timing reference. Counters and span
//! structure are reproducible bit-for-bit on any machine (the workspace's
//! determinism contract), so they gate exactly; times cross machines, so
//! they gate only through the same ratio-over-noise-floor policy as
//! [`crate::diff()`], and only when a ratio is explicitly requested.

use std::collections::BTreeMap;

use mss_obs::ndjson::{json_num, json_str};

use crate::json::Value;
use crate::report::Report;

/// Magic `type` tag of a baseline document.
pub const BASELINE_TYPE: &str = "mss-bench-baseline";

/// One span's baseline entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineSpan {
    /// Closings of this path in the baseline run (deterministic, gates).
    pub count: u64,
    /// Mean seconds per closing in the baseline run (advisory).
    pub mean_seconds: f64,
}

/// A committed benchmark baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Bench name (`cache_smoke`, `mc_smoke`, …).
    pub name: String,
    /// NDJSON schema version of the run the baseline was cut from.
    pub schema: u32,
    /// Counter name → expected value.
    pub counters: BTreeMap<String, u64>,
    /// Span path → expected structure and advisory timing.
    pub spans: BTreeMap<String, BaselineSpan>,
}

/// Gating policy for [`Baseline::check`].
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    /// When set, a span gates if its mean gets this many times slower than
    /// the baseline (subject to `min_span_seconds`). `None` = structure and
    /// counters only.
    pub max_span_ratio: Option<f64>,
    /// Spans under this much total time (in both baseline and run) never
    /// time-gate.
    pub min_span_seconds: f64,
    /// Counter name prefixes excluded from gating.
    pub ignore_counters: Vec<String>,
}

/// One check finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// True when this finding fails the gate.
    pub gating: bool,
    /// Human-readable description.
    pub message: String,
}

impl Baseline {
    /// Cuts a baseline from a parsed run report.
    pub fn from_report(name: &str, report: &Report) -> Baseline {
        Baseline {
            name: name.to_string(),
            schema: report.meta.schema,
            counters: report.counters.clone(),
            spans: report
                .spans
                .iter()
                .map(|(path, s)| {
                    (
                        path.clone(),
                        BaselineSpan {
                            count: s.count,
                            mean_seconds: s.mean_seconds(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Renders the baseline as a stable, human-diffable JSON document
    /// (sorted keys, one entry per line, trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"type\": {},\n  \"name\": {},\n  \"schema\": {},\n  \"counters\": {{\n",
            json_str(BASELINE_TYPE),
            json_str(&self.name),
            self.schema
        );
        let counter_lines: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("    {}: {v}", json_str(k)))
            .collect();
        out.push_str(&counter_lines.join(",\n"));
        out.push_str("\n  },\n  \"spans\": {\n");
        let span_lines: Vec<String> = self
            .spans
            .iter()
            .map(|(k, s)| {
                format!(
                    "    {}: {{\"count\": {}, \"mean_seconds\": {}}}",
                    json_str(k),
                    s.count,
                    json_num(s.mean_seconds)
                )
            })
            .collect();
        out.push_str(&span_lines.join(",\n"));
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses a baseline document.
    ///
    /// # Errors
    ///
    /// When the document is not valid JSON or not a baseline.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v = Value::parse(text)?;
        if v.get("type").and_then(Value::as_str) != Some(BASELINE_TYPE) {
            return Err(format!("not a baseline: missing type {BASELINE_TYPE:?}"));
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("baseline missing \"name\"")?
            .to_string();
        let schema = v
            .get("schema")
            .and_then(Value::as_u64)
            .and_then(|s| u32::try_from(s).ok())
            .ok_or("baseline missing \"schema\"")?;
        let mut counters = BTreeMap::new();
        for (k, val) in v
            .get("counters")
            .and_then(Value::as_obj)
            .ok_or("baseline missing \"counters\" object")?
        {
            counters.insert(
                k.clone(),
                val.as_u64()
                    .ok_or_else(|| format!("counter {k:?} is not an integer"))?,
            );
        }
        let mut spans = BTreeMap::new();
        for (k, val) in v
            .get("spans")
            .and_then(Value::as_obj)
            .ok_or("baseline missing \"spans\" object")?
        {
            spans.insert(
                k.clone(),
                BaselineSpan {
                    count: val
                        .get("count")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("span {k:?} missing count"))?,
                    mean_seconds: val
                        .get("mean_seconds")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("span {k:?} missing mean_seconds"))?,
                },
            );
        }
        Ok(Baseline {
            name,
            schema,
            counters,
            spans,
        })
    }

    /// Checks a fresh run against this baseline; gating findings fail CI.
    ///
    /// - a baseline counter that is missing or differs → gating (unless on
    ///   an ignore prefix),
    /// - a counter the baseline has never seen → informational (regenerate
    ///   the baseline to adopt new instrumentation),
    /// - a baseline span that is missing or closed a different number of
    ///   times → gating,
    /// - a span ≥ `max_span_ratio`× slower than the baseline mean, above the
    ///   noise floor → gating (only when a ratio was requested).
    pub fn check(&self, report: &Report, opts: &CheckOptions) -> Vec<Finding> {
        let ignored = |name: &str| opts.ignore_counters.iter().any(|p| name.starts_with(p));
        let mut findings = Vec::new();
        for (name, &expect) in &self.counters {
            match report.counters.get(name) {
                None => findings.push(Finding {
                    gating: !ignored(name),
                    message: format!("counter {name:?} missing (baseline {expect})"),
                }),
                Some(&got) if got != expect => findings.push(Finding {
                    gating: !ignored(name),
                    message: format!("counter {name:?} drifted: baseline {expect}, run {got}"),
                }),
                Some(_) => {}
            }
        }
        for name in report.counters.keys() {
            if !self.counters.contains_key(name) {
                findings.push(Finding {
                    gating: false,
                    message: format!(
                        "counter {name:?} is new since the baseline (regenerate to adopt)"
                    ),
                });
            }
        }
        for (path, b) in &self.spans {
            match report.spans.get(path) {
                None => findings.push(Finding {
                    gating: true,
                    message: format!("span {path:?} missing (baseline count {})", b.count),
                }),
                Some(s) => {
                    if s.count != b.count {
                        findings.push(Finding {
                            gating: true,
                            message: format!(
                                "span {path:?} count drifted: baseline {}, run {}",
                                b.count, s.count
                            ),
                        });
                    }
                    if let Some(max_ratio) = opts.max_span_ratio {
                        let baseline_total = b.mean_seconds * b.count as f64;
                        let above_floor =
                            baseline_total.max(s.total_seconds) >= opts.min_span_seconds;
                        if above_floor
                            && b.mean_seconds > 0.0
                            && s.mean_seconds() > b.mean_seconds * max_ratio
                        {
                            findings.push(Finding {
                                gating: true,
                                message: format!(
                                    "span {path:?} regressed: baseline mean {:.3e}s, run {:.3e}s ({:.2}x > {max_ratio}x)",
                                    b.mean_seconds,
                                    s.mean_seconds(),
                                    s.mean_seconds() / b.mean_seconds
                                ),
                            });
                        }
                    }
                }
            }
        }
        for path in report.spans.keys() {
            if !self.spans.contains_key(path) {
                findings.push(Finding {
                    gating: false,
                    message: format!("span {path:?} is new since the baseline"),
                });
            }
        }
        findings
    }
}

/// True when no finding gates.
pub fn passes(findings: &[Finding]) -> bool {
    findings.iter().all(|f| !f.gating)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_obs::{Mode, Registry};

    fn sample_report(extra_counter: Option<(&str, u64)>, span_closings: u32) -> Report {
        let reg = Registry::new(Mode::Metrics);
        reg.counter_add("bench.items", 100);
        if let Some((name, v)) = extra_counter {
            reg.counter_add(name, v);
        }
        for _ in 0..span_closings {
            let _g = reg.span("bench_leg");
        }
        Report::parse_ndjson(&reg.to_ndjson()).expect("valid report")
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let report = sample_report(Some(("bench.extra", 3)), 2);
        let b = Baseline::from_report("smoke", &report);
        let text = b.to_json();
        // The document itself is strict JSON...
        Value::parse(&text).expect("baseline is valid JSON");
        // ...and parses back to an identical structure.
        let back = Baseline::parse(&text).expect("parse back");
        assert_eq!(back, b);
        assert_eq!(back.spans["bench_leg"].count, 2);
        assert_eq!(back.counters["bench.items"], 100);
    }

    #[test]
    fn self_check_passes() {
        let report = sample_report(None, 2);
        let b = Baseline::from_report("smoke", &report);
        let findings = b.check(&report, &CheckOptions::default());
        assert!(passes(&findings), "{findings:?}");
    }

    #[test]
    fn counter_drift_and_span_count_drift_gate() {
        let b = Baseline::from_report("smoke", &sample_report(None, 2));
        let drifted = sample_report(None, 3);
        let findings = b.check(&drifted, &CheckOptions::default());
        assert!(!passes(&findings));
        assert!(findings
            .iter()
            .any(|f| f.gating && f.message.contains("count drifted")));

        let counter_drift = {
            let reg = Registry::new(Mode::Metrics);
            reg.counter_add("bench.items", 99);
            for _ in 0..2 {
                let _g = reg.span("bench_leg");
            }
            Report::parse_ndjson(&reg.to_ndjson()).unwrap()
        };
        let findings = b.check(&counter_drift, &CheckOptions::default());
        assert!(findings
            .iter()
            .any(|f| f.gating && f.message.contains("drifted: baseline 100, run 99")));
    }

    #[test]
    fn new_instrumentation_is_informational_not_gating() {
        let b = Baseline::from_report("smoke", &sample_report(None, 2));
        let richer = sample_report(Some(("bench.new_counter", 1)), 2);
        let findings = b.check(&richer, &CheckOptions::default());
        assert!(passes(&findings), "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| !f.gating && f.message.contains("new")));
    }

    #[test]
    fn time_gate_is_opt_in_and_noise_floored() {
        let fast = {
            let reg = Registry::new(Mode::Metrics);
            {
                let _g = reg.span("leg");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            Report::parse_ndjson(&reg.to_ndjson()).unwrap()
        };
        let slow = {
            let reg = Registry::new(Mode::Metrics);
            {
                let _g = reg.span("leg");
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            Report::parse_ndjson(&reg.to_ndjson()).unwrap()
        };
        let b = Baseline::from_report("smoke", &fast);
        // No ratio requested: times never gate.
        assert!(passes(&b.check(&slow, &CheckOptions::default())));
        // Ratio requested but floor above the span: still clean.
        let floored = CheckOptions {
            max_span_ratio: Some(2.0),
            min_span_seconds: 10.0,
            ..CheckOptions::default()
        };
        assert!(passes(&b.check(&slow, &floored)));
        // Ratio requested with a realistic floor: the 20x slowdown gates.
        let strict = CheckOptions {
            max_span_ratio: Some(2.0),
            min_span_seconds: 0.02,
            ..CheckOptions::default()
        };
        let findings = b.check(&slow, &strict);
        assert!(!passes(&findings));
        assert!(findings.iter().any(|f| f.message.contains("regressed")));
    }

    #[test]
    fn rejects_non_baseline_documents() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"type\":\"other\"}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
