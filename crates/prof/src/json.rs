//! Minimal zero-dependency JSON parser.
//!
//! The consumption side of the observability pipeline: `mss-obs` emits
//! NDJSON with a hand-rolled writer, and this module reads it (and the
//! Chrome traces / baselines built from it) back into a [`Value`] tree. It
//! is a strict RFC 8259 subset parser — no trailing commas, no comments, no
//! NaN/Infinity literals — so anything it accepts loads in Perfetto,
//! `jq`, and every standards-compliant consumer.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`; see [`Value::as_u64`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are unique; a duplicate key is a parse error (NDJSON
    /// report lines never repeat keys, so a repeat means a corrupt file).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Parses a complete JSON document (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// A message naming the byte offset and what was expected.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The object map, when this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer (counters, counts).
    ///
    /// Rejects negatives, fractions, and magnitudes beyond 2⁵³ where `f64`
    /// can no longer represent every integer.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= 2f64.powi(53) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?.get(key)
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(format!(
                "unexpected {} at byte {}",
                other.map_or("end of input".to_string(), |c| format!("{:?}", *c as char)),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &[u8], v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.pos += 1; // {
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {}", self.pos));
            }
            self.pos += 1;
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key {key:?} at byte {key_at}"));
            }
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(format!(
                                            "bad low surrogate at byte {}",
                                            self.pos
                                        ));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(format!(
                                        "lone high surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(format!("invalid code point at byte {}", self.pos))
                                }
                            }
                            // hex4 advanced past the digits already.
                            continue;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| *c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(&c) if c < 0x20 => return Err(format!("raw control byte at {}", self.pos)),
                Some(_) => {
                    // Advance one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let step = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .map_or(1, |c| {
                            out.push(c);
                            c.len_utf8()
                        });
                    self.pos += step;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(format!("truncated \\u escape at byte {}", self.pos));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| format!("non-ASCII \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(digits, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.bytes.get(p.pos).is_some_and(u8::is_ascii_digit) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad fraction at byte {start}"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad exponent at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("unparseable number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(Value::parse("-1.5e-3").unwrap(), Value::Num(-1.5e-3));
        assert_eq!(
            Value::parse("\"hi\"").unwrap(),
            Value::Str("hi".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a":[1,{"b":null},"x"],"c":{"d":true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Value::Bool(true)));
    }

    #[test]
    fn decodes_escapes_and_surrogates() {
        let v = Value::parse(r#""a\n\t\"\\\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\t\"\\A😀");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "01x",
            "\"unterminated",
            "{\"a\":1}extra",
            "{\"dup\":1,\"dup\":2}",
            "\"lone\\ud800\"",
            "nan",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn u64_conversion_is_exact_only() {
        assert_eq!(Value::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Value::parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(Value::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Value::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Value::parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn round_trips_obs_emitter_output() {
        use mss_obs::ndjson::{json_num, json_str};
        let line = format!(
            "{{\"name\":{},\"v\":{}}}",
            json_str("weird \"name\"\\with\nctrl\u{1}"),
            json_num(1.25e-9)
        );
        let v = Value::parse(&line).unwrap();
        assert_eq!(
            v.get("name").unwrap().as_str().unwrap(),
            "weird \"name\"\\with\nctrl\u{1}"
        );
        assert_eq!(v.get("v").unwrap().as_f64(), Some(1.25e-9));
    }
}
