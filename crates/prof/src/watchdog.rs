//! Runtime perf watchdog: live span aggregates vs committed baselines.
//!
//! PR 5 gave the workspace *post-hoc* perf gating — CI diffs a finished
//! smoke run against `results/BENCH_<name>.json`. A long-running sweep
//! service needs the same comparison *while the process is alive*: the
//! watchdog takes a live `mss_obs::Registry`, renders it through the
//! existing report parser, and applies the identical
//! ratio-over-noise-floor span-time policy as [`Baseline::check`] /
//! [`crate::diff()`]. Hits become [`WatchdogRegression`]s, surfaced as
//! `watchdog.regression` counters and `watchdog` events on the telemetry
//! bus.
//!
//! Policy is deliberately warn-only by default (`MSS_WATCHDOG=1`): wall
//! times cross machines, so a regression report is advice, not proof. The
//! smoke bins escalate to a hard failure under `MSS_WATCHDOG=strict`,
//! where the committed baseline was cut on comparable hardware.

use std::path::Path;

use crate::baseline::Baseline;
use crate::report::Report;

/// Environment variable selecting the watchdog mode (`off` default,
/// `1`/`true`/`on`/`warn` to warn, `strict` to gate).
pub const WATCHDOG_ENV: &str = "MSS_WATCHDOG";

/// Counter bumped (on the global registry) once per detected regression.
pub const REGRESSION_COUNTER: &str = "watchdog.regression";

/// Default slowdown ratio that counts as a regression. Looser than CI's
/// committed-baseline gate (2x) because a *live* process also carries
/// whatever else the host is doing.
pub const DEFAULT_MAX_SPAN_RATIO: f64 = 4.0;

/// Default noise floor: spans under this much total time in both baseline
/// and run never trigger.
pub const DEFAULT_MIN_SPAN_SECONDS: f64 = 0.05;

/// What to do when a regression is found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogMode {
    /// Watchdog disabled.
    Off,
    /// Report regressions (counter + event + stderr), never fail.
    Warn,
    /// Report and gate: smoke bins exit non-zero on any regression.
    Strict,
}

impl WatchdogMode {
    /// Reads the mode from [`WATCHDOG_ENV`]. Unset/`0`/`false`/`off`
    /// disable; `1`/`true`/`on`/`warn` warn; `strict` gates; anything else
    /// warns once on stderr and counts as off (the workspace env
    /// convention).
    pub fn from_env() -> Self {
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        match std::env::var(WATCHDOG_ENV) {
            Err(_) => Self::Off,
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "" | "0" | "false" | "off" => Self::Off,
                "1" | "true" | "on" | "warn" => Self::Warn,
                "strict" => Self::Strict,
                other => {
                    let other = other.to_string();
                    WARN_ONCE.call_once(|| {
                        eprintln!(
                            "warning: ignoring {WATCHDOG_ENV}={other:?}; \
                             expected off, warn (1/true/on) or strict"
                        );
                    });
                    Self::Off
                }
            },
        }
    }
}

/// One span running slower than its committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogRegression {
    /// Span path.
    pub span: String,
    /// Per-call mean seconds in the baseline.
    pub baseline_seconds: f64,
    /// Per-call mean seconds observed live.
    pub run_seconds: f64,
    /// `run_seconds / baseline_seconds`.
    pub ratio: f64,
}

impl WatchdogRegression {
    /// Human-readable one-liner.
    pub fn render(&self) -> String {
        format!(
            "watchdog: span {:?} regressed {:.2}x over baseline ({:.3e}s -> {:.3e}s)",
            self.span, self.ratio, self.baseline_seconds, self.run_seconds
        )
    }
}

/// A live perf watchdog bound to one committed baseline.
#[derive(Debug, Clone)]
pub struct Watchdog {
    baseline: Baseline,
    /// Slowdown ratio that counts as a regression.
    pub max_span_ratio: f64,
    /// Noise floor in seconds of span total time.
    pub min_span_seconds: f64,
}

impl Watchdog {
    /// Wraps a parsed baseline with an explicit policy.
    pub fn new(baseline: Baseline, max_span_ratio: f64, min_span_seconds: f64) -> Self {
        Self {
            baseline,
            max_span_ratio,
            min_span_seconds,
        }
    }

    /// Loads a committed `BENCH_<name>.json` with the default live policy.
    ///
    /// # Errors
    ///
    /// When the file cannot be read or is not a baseline document.
    pub fn from_baseline_file(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let baseline = Baseline::parse(&text)?;
        Ok(Self::new(
            baseline,
            DEFAULT_MAX_SPAN_RATIO,
            DEFAULT_MIN_SPAN_SECONDS,
        ))
    }

    /// The wrapped baseline.
    pub fn baseline(&self) -> &Baseline {
        &self.baseline
    }

    /// Compares span means in `report` against the baseline, applying the
    /// same ratio-over-noise-floor policy as [`Baseline::check`]: only
    /// spans the baseline knows, only above the floor, only when the mean
    /// exceeds `max_span_ratio` times the baseline mean. Counters and span
    /// counts are *not* the watchdog's business — those gate structurally
    /// in CI; a live process may legitimately be mid-sweep.
    pub fn check_report(&self, report: &Report) -> Vec<WatchdogRegression> {
        let mut regressions = Vec::new();
        for (path, b) in &self.baseline.spans {
            let Some(s) = report.spans.get(path) else {
                continue;
            };
            let baseline_total = b.mean_seconds * b.count as f64;
            let above_floor = baseline_total.max(s.total_seconds) >= self.min_span_seconds;
            let run_mean = s.mean_seconds();
            if above_floor
                && b.mean_seconds > 0.0
                && run_mean > b.mean_seconds * self.max_span_ratio
            {
                regressions.push(WatchdogRegression {
                    span: path.clone(),
                    baseline_seconds: b.mean_seconds,
                    run_seconds: run_mean,
                    ratio: run_mean / b.mean_seconds,
                });
            }
        }
        regressions
    }

    /// Renders a live registry through the report parser and checks it.
    ///
    /// # Errors
    ///
    /// When the registry's NDJSON does not validate (a writer bug — the
    /// watchdog must never paper over that).
    pub fn check_registry(
        &self,
        registry: &mss_obs::Registry,
    ) -> Result<Vec<WatchdogRegression>, String> {
        let report = Report::parse_ndjson(&registry.to_ndjson())?;
        Ok(self.check_report(&report))
    }
}

/// Surfaces regressions on the global telemetry plane — one
/// [`REGRESSION_COUNTER`] bump, one `watchdog` bus event and one stderr
/// line each — and returns `true` when `mode` is strict and anything
/// regressed (the caller should then fail its run).
pub fn surface(mode: WatchdogMode, regressions: &[WatchdogRegression]) -> bool {
    if mode == WatchdogMode::Off {
        return false;
    }
    for r in regressions {
        mss_obs::counter_add(REGRESSION_COUNTER, 1);
        mss_obs::events::publish(mss_obs::events::EventPayload::Watchdog {
            span: r.span.clone(),
            baseline_seconds: r.baseline_seconds,
            run_seconds: r.run_seconds,
            ratio: r.ratio,
        });
        eprintln!("{}", r.render());
    }
    mode == WatchdogMode::Strict && !regressions.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_obs::{Mode, Registry};

    fn report_with_leg(spin_ms: u64) -> Report {
        let reg = Registry::new(Mode::Metrics);
        {
            let _g = reg.span("watchdog_leg");
            std::thread::sleep(std::time::Duration::from_millis(spin_ms));
        }
        {
            let _g = reg.span("tiny_leg");
        }
        Report::parse_ndjson(&reg.to_ndjson()).expect("valid report")
    }

    #[test]
    fn detects_a_deliberately_slowed_span() {
        // The acceptance self-test: cut a baseline from a fast run, then
        // slow the same span ~20x and demand the watchdog names it.
        let baseline = Baseline::from_report("wd", &report_with_leg(3));
        let wd = Watchdog::new(baseline, 4.0, 0.02);
        let slow = report_with_leg(60);
        let regressions = wd.check_report(&slow);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        let r = &regressions[0];
        assert_eq!(r.span, "watchdog_leg");
        assert!(r.ratio > 4.0, "{r:?}");
        assert!(r.render().contains("watchdog_leg"));
        // And a healthy run stays quiet.
        assert!(wd.check_report(&report_with_leg(3)).is_empty());
    }

    #[test]
    fn noise_floor_suppresses_sub_floor_spans() {
        // tiny_leg is microseconds in both runs; even an enormous relative
        // slowdown below the floor must not trigger.
        let baseline = Baseline::from_report("wd", &report_with_leg(2));
        let wd = Watchdog::new(baseline, 1.001, 10.0);
        assert!(wd.check_report(&report_with_leg(50)).is_empty());
    }

    #[test]
    fn spans_unknown_to_the_baseline_are_ignored() {
        let baseline = Baseline::from_report("wd", &report_with_leg(2));
        let wd = Watchdog::new(baseline, 4.0, 0.0);
        let reg = Registry::new(Mode::Metrics);
        {
            let _g = reg.span("brand_new_leg");
            std::thread::sleep(std::time::Duration::from_millis(30));
        }
        let report = Report::parse_ndjson(&reg.to_ndjson()).unwrap();
        assert!(wd.check_report(&report).is_empty());
    }

    #[test]
    fn check_registry_goes_through_the_validator() {
        let baseline = Baseline::from_report("wd", &report_with_leg(2));
        let wd = Watchdog::new(baseline, 4.0, 0.02);
        let live = Registry::new(Mode::Metrics);
        {
            let _g = live.span("watchdog_leg");
            std::thread::sleep(std::time::Duration::from_millis(45));
        }
        let regressions = wd.check_registry(&live).expect("live registry parses");
        assert_eq!(regressions.len(), 1);
    }

    #[test]
    fn surface_gates_only_under_strict() {
        let regression = WatchdogRegression {
            span: "leg".into(),
            baseline_seconds: 1e-3,
            run_seconds: 1e-2,
            ratio: 10.0,
        };
        assert!(!surface(
            WatchdogMode::Off,
            std::slice::from_ref(&regression)
        ));
        assert!(!surface(
            WatchdogMode::Warn,
            std::slice::from_ref(&regression)
        ));
        assert!(surface(
            WatchdogMode::Strict,
            std::slice::from_ref(&regression)
        ));
        assert!(!surface(WatchdogMode::Strict, &[]));
    }
}
