//! Chrome trace-event export: turns a trace-mode run report into a JSON
//! document loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! The exporter emits the documented subset of the Trace Event Format:
//! one `M` (metadata) event naming the process, one per thread ordinal
//! (`main`, `worker-0`, `worker-1`, … matching `mss-exec`'s pinning), and
//! one `X` (complete) event per recorded span closing with microsecond
//! `ts`/`dur`. Timestamps are relative to the registry epoch, so timelines
//! from different runs line up at zero.

use std::collections::BTreeSet;

use mss_obs::ndjson::json_str;

use crate::report::Report;

/// Human-facing name of a thread ordinal: `main` for 0, `worker-k` for the
/// ordinal `mss-exec` pins as `1 + k`.
pub fn thread_name(tid: u32) -> String {
    if tid == 0 {
        "main".to_string()
    } else {
        format!("worker-{}", tid - 1)
    }
}

/// Renders the report's trace events as a Chrome trace-event JSON document.
///
/// # Errors
///
/// When the report carries no events — a metrics-only run has aggregates
/// but no timeline; re-run with `MSS_TRACE=1`.
pub fn chrome_trace(report: &Report) -> Result<String, String> {
    if report.events.is_empty() {
        return Err(format!(
            "report (mode {:?}) has no trace events; re-run the workload with MSS_TRACE=1",
            report.meta.mode
        ));
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, event: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&event);
    };

    push(
        &mut out,
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"mss\"}}"
            .to_string(),
    );
    let tids: BTreeSet<u32> = report.events.iter().map(|e| e.tid).collect();
    for tid in &tids {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                json_str(&thread_name(*tid))
            ),
        );
    }
    for e in &report.events {
        let leaf = e.path.rsplit('/').next().unwrap_or(&e.path);
        push(
            &mut out,
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":{},\"cat\":\"span\",\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"path\":{}}}}}",
                e.tid,
                json_str(leaf),
                e.start_seconds * 1e6,
                e.duration_seconds * 1e6,
                json_str(&e.path)
            ),
        );
    }
    out.push_str("\n]}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use mss_obs::{Mode, Registry};

    /// The acceptance gate: a trace produced by a real `MSS_TRACE`-style
    /// registry must export as valid trace-event JSON — parsed back by the
    /// in-tree strict parser, with the structure Perfetto requires
    /// (`traceEvents` array; every `X` event carrying name/ts/dur/pid/tid).
    #[test]
    fn export_from_a_live_trace_run_is_valid_trace_event_json() {
        let reg = Registry::new(Mode::Trace);
        {
            let _outer = reg.span("flow");
            {
                let _inner = reg.span("characterize");
            }
            let _other = reg.span("simulate");
        }
        let report = Report::parse_ndjson(&reg.to_ndjson()).expect("valid NDJSON");
        let trace = chrome_trace(&report).expect("export");
        let doc = Value::parse(&trace).expect("chrome trace must be valid JSON");

        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents array");
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 3, "one X event per span closing");
        for e in complete {
            for key in ["name", "ts", "dur", "pid", "tid"] {
                assert!(e.get(key).is_some(), "X event missing {key}: {e:?}");
            }
            assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
            assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
            // Leaf name plus the full path for disambiguation.
            let path = e
                .get("args")
                .unwrap()
                .get("path")
                .unwrap()
                .as_str()
                .unwrap();
            assert!(path.ends_with(e.get("name").unwrap().as_str().unwrap()));
        }
        // Metadata names the process and every thread in the timeline.
        assert!(events
            .iter()
            .any(|e| { e.get("name").and_then(Value::as_str) == Some("process_name") }));
        assert!(events
            .iter()
            .any(|e| { e.get("name").and_then(Value::as_str) == Some("thread_name") }));
    }

    #[test]
    fn metrics_only_reports_refuse_with_a_hint() {
        let reg = Registry::new(Mode::Metrics);
        {
            let _g = reg.span("quiet");
        }
        let report = Report::parse_ndjson(&reg.to_ndjson()).unwrap();
        let err = chrome_trace(&report).expect_err("no events, no trace");
        assert!(err.contains("MSS_TRACE=1"), "{err}");
    }

    #[test]
    fn worker_threads_get_stable_names() {
        assert_eq!(thread_name(0), "main");
        assert_eq!(thread_name(1), "worker-0");
        assert_eq!(thread_name(9), "worker-8");
    }
}
