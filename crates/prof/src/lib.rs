//! `mss-prof` — the profiling and perf-regression subsystem of the GREAT
//! MSS flow: the consumption side of `mss-obs`.
//!
//! `mss-obs` (PR 2) made every layer of the device→PDK→memory→system flow
//! *emit* NDJSON run reports; this crate makes them *actionable*:
//!
//! - [`report`] — strict parsing/validation of the NDJSON schema (v1 and
//!   the v2 profiling extensions: self time, per-thread ownership,
//!   quantiles, drop counts) plus top-N hot-path attribution,
//! - [`chrome`] — Chrome trace-event export (loadable in Perfetto /
//!   `chrome://tracing`) with per-thread timelines named after `mss-exec`
//!   workers,
//! - [`diff()`] — run-to-run comparison separating deterministic counter or
//!   span-structure regressions (always gate) from wall-clock noise
//!   (ratio-over-noise-floor policy),
//! - [`baseline`] — committed `BENCH_<name>.json` structural baselines the
//!   CI perf gate checks every push against,
//! - [`json`] — the zero-dependency strict JSON parser underneath it all.
//!
//! The `mss_report` binary exposes all of it on the command line:
//!
//! ```text
//! mss_report summary  target/cache_smoke.ndjson
//! mss_report diff     base.ndjson new.ndjson --max-span-ratio 2.0
//! mss_report chrome-trace target/cache_smoke.ndjson --out trace.json
//! mss_report validate target/*.ndjson
//! mss_report baseline target/cache_smoke.ndjson --name cache_smoke
//! mss_report check    results/BENCH_cache_smoke.json target/cache_smoke.ndjson
//! ```
//!
//! Everything here is hermetic: no dependencies outside the workspace, no
//! network, deterministic output for deterministic input.

#![deny(missing_docs)]

pub mod baseline;
pub mod chrome;
pub mod diff;
pub mod json;
pub mod report;
pub mod watchdog;

pub use baseline::{Baseline, CheckOptions, Finding};
pub use chrome::chrome_trace;
pub use diff::{diff, DiffOptions, ReportDiff};
pub use json::Value;
pub use report::{BusRecord, Report};
pub use watchdog::{Watchdog, WatchdogMode, WatchdogRegression};

#[cfg(test)]
mod tests {
    use super::*;
    use mss_obs::{Mode, Registry};

    /// End-to-end: a live registry report survives the full pipeline —
    /// parse → summarize → baseline → self-check → diff-clean.
    #[test]
    fn full_pipeline_round_trip() {
        let reg = Registry::new(Mode::Trace);
        reg.counter_add("e2e.items", 5);
        reg.record_value("e2e.latency", 1e-6);
        {
            let _g = reg.span("e2e");
            let _h = reg.span("leg");
        }
        let text = reg.to_ndjson();

        let report = Report::parse_ndjson(&text).expect("parse");
        assert!(report.render_summary(10).contains("e2e"));

        let b = Baseline::from_report("e2e", &report);
        let reparsed = Baseline::parse(&b.to_json()).expect("baseline round-trip");
        assert!(baseline::passes(
            &reparsed.check(&report, &CheckOptions::default())
        ));

        let d = diff(&report, &report, &DiffOptions::default());
        assert!(d.is_clean());

        let trace = chrome_trace(&report).expect("trace export");
        json::Value::parse(&trace).expect("trace is valid JSON");
    }
}
