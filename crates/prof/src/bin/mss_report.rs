//! `mss_report` — the profiling CLI over NDJSON run reports.
//!
//! ```text
//! mss_report summary <report.ndjson> [--top N]
//! mss_report diff <base.ndjson> <new.ndjson> [--max-span-ratio R]
//!                 [--min-span-seconds S] [--ignore-counter PREFIX]...
//! mss_report chrome-trace <report.ndjson> [--out FILE]
//! mss_report validate <report.ndjson>...
//! mss_report baseline <report.ndjson> --name NAME [--out FILE]
//! mss_report check <BENCH_name.json> <report.ndjson> [--max-span-ratio R]
//!                  [--min-span-seconds S] [--ignore-counter PREFIX]...
//! mss_report tail <events.ndjson> [--poll-ms N] [--idle-ms N] [--kinds all]
//! ```
//!
//! Exit codes: 0 = clean, 1 = gating regression or invalid report,
//! 2 = usage / I/O error.

use std::io::{Read as _, Seek as _};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use mss_prof::baseline::{passes, Baseline, CheckOptions};
use mss_prof::chrome::chrome_trace;
use mss_prof::diff::{diff, DiffOptions};
use mss_prof::json::Value;
use mss_prof::report::Report;

const USAGE: &str = "\
usage: mss_report <command> [args]

commands:
  summary <report.ndjson> [--top N]
      Parse a run report and print the top-N hot paths (self-time
      attribution, per-thread ownership) plus headline counts.
  diff <base.ndjson> <new.ndjson> [--max-span-ratio R] [--min-span-seconds S]
       [--ignore-counter PREFIX]...
      Compare two runs. Counter or span-structure drift always gates
      (deterministic); span times gate when > R x slower (default 2.0)
      above the S-second noise floor (default 0.05). Exit 1 on regression.
  chrome-trace <report.ndjson> [--out FILE]
      Export an MSS_TRACE=1 run as Chrome trace-event JSON (stdout or
      FILE); load it in https://ui.perfetto.dev or chrome://tracing.
  validate <report.ndjson>...
      Strict schema validation of each report; exit 1 on the first
      invalid file.
  baseline <report.ndjson> --name NAME [--out FILE]
      Cut a structural BENCH_<NAME>.json baseline (counters + span
      structure + advisory mean times) from a run report.
  check <BENCH_name.json> <report.ndjson> [--max-span-ratio R]
        [--min-span-seconds S] [--ignore-counter PREFIX]...
      Check a fresh run against a committed baseline. Counters and span
      structure gate exactly; span times gate only when R is given.
  tail <events.ndjson> [--poll-ms N] [--idle-ms N] [--kinds all]
      Follow a live MSS_EVENTS NDJSON stream and render sweep progress,
      worker heartbeats, failures and watchdog regressions as they land.
      Waits for the file to appear, tolerates a torn final line, and exits
      once the stream is idle for N ms (default 2000; 0 = single pass).
      --kinds all additionally renders gauge/counter/span events.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("mss_report: {e}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Runs the CLI; `Ok(false)` means a gating regression (exit 1).
fn run(args: &[String]) -> Result<bool, String> {
    let (cmd, rest) = args.split_first().ok_or("missing command")?;
    match cmd.as_str() {
        "summary" => summary(rest),
        "diff" => diff_cmd(rest),
        "chrome-trace" => chrome_cmd(rest),
        "validate" => validate(rest),
        "baseline" => baseline_cmd(rest),
        "check" => check_cmd(rest),
        "tail" => tail_cmd(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Parsed `--flag value` pairs, in order (flags may repeat).
type Flags = Vec<(String, String)>;

/// Splits positional arguments from `--flag value` pairs (and lists).
fn parse_flags(rest: &[String], known: &[&str]) -> Result<(Vec<String>, Flags), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if !known.contains(&name) {
                return Err(format!("unknown flag --{name}"));
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn flag_f64(flags: &[(String, String)], name: &str) -> Result<Option<f64>, String> {
    flag(flags, name)
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| format!("--{name} expects a number, got {v:?}"))
        })
        .transpose()
}

fn flag_list(flags: &[(String, String)], name: &str) -> Vec<String> {
    flags
        .iter()
        .filter(|(n, _)| n == name)
        .map(|(_, v)| v.clone())
        .collect()
}

fn load_report(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Report::parse_ndjson(&text).map_err(|e| format!("{path}: {e}"))
}

fn write_out(out: Option<&str>, content: &str, what: &str) -> Result<(), String> {
    match out {
        None => {
            print!("{content}");
            Ok(())
        }
        Some(path) => {
            if let Some(dir) = std::path::Path::new(path).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            std::fs::write(path, content).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("{what} -> {path}");
            Ok(())
        }
    }
}

fn summary(rest: &[String]) -> Result<bool, String> {
    let (pos, flags) = parse_flags(rest, &["top"])?;
    let [path] = pos.as_slice() else {
        return Err("summary expects exactly one report".to_string());
    };
    let top = flag(&flags, "top")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--top expects an integer, got {v:?}"))
        })
        .transpose()?
        .unwrap_or(15);
    let report = load_report(path)?;
    print!("{}", report.render_summary(top));
    Ok(true)
}

fn diff_opts(flags: &[(String, String)]) -> Result<DiffOptions, String> {
    let mut opts = DiffOptions {
        ignore_counters: flag_list(flags, "ignore-counter"),
        ..DiffOptions::default()
    };
    if let Some(r) = flag_f64(flags, "max-span-ratio")? {
        opts.max_span_ratio = r;
    }
    if let Some(s) = flag_f64(flags, "min-span-seconds")? {
        opts.min_span_seconds = s;
    }
    Ok(opts)
}

fn diff_cmd(rest: &[String]) -> Result<bool, String> {
    let (pos, flags) = parse_flags(
        rest,
        &["max-span-ratio", "min-span-seconds", "ignore-counter"],
    )?;
    let [base_path, new_path] = pos.as_slice() else {
        return Err("diff expects <base.ndjson> <new.ndjson>".to_string());
    };
    let opts = diff_opts(&flags)?;
    let base = load_report(base_path)?;
    let new = load_report(new_path)?;
    let d = diff(&base, &new, &opts);
    print!("{}", d.render());
    if d.is_clean() {
        Ok(true)
    } else {
        eprintln!("mss_report diff: gating regressions against {base_path}");
        Ok(false)
    }
}

fn chrome_cmd(rest: &[String]) -> Result<bool, String> {
    let (pos, flags) = parse_flags(rest, &["out"])?;
    let [path] = pos.as_slice() else {
        return Err("chrome-trace expects exactly one report".to_string());
    };
    let report = load_report(path)?;
    let trace = chrome_trace(&report)?;
    write_out(flag(&flags, "out"), &trace, "chrome trace")?;
    Ok(true)
}

fn validate(rest: &[String]) -> Result<bool, String> {
    if rest.is_empty() {
        return Err("validate expects at least one report".to_string());
    }
    for path in rest {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        match Report::parse_ndjson(&text) {
            Ok(r) => println!(
                "{path}: valid schema v{} ({} counters, {} histograms, {} spans, {} events)",
                r.meta.schema,
                r.counters.len(),
                r.histograms.len(),
                r.spans.len(),
                r.events.len()
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                return Ok(false);
            }
        }
    }
    Ok(true)
}

fn baseline_cmd(rest: &[String]) -> Result<bool, String> {
    let (pos, flags) = parse_flags(rest, &["name", "out"])?;
    let [path] = pos.as_slice() else {
        return Err("baseline expects exactly one report".to_string());
    };
    let name = flag(&flags, "name").ok_or("baseline requires --name")?;
    let report = load_report(path)?;
    let b = Baseline::from_report(name, &report);
    write_out(flag(&flags, "out"), &b.to_json(), "baseline")?;
    Ok(true)
}

fn check_cmd(rest: &[String]) -> Result<bool, String> {
    let (pos, flags) = parse_flags(
        rest,
        &["max-span-ratio", "min-span-seconds", "ignore-counter"],
    )?;
    let [baseline_path, report_path] = pos.as_slice() else {
        return Err("check expects <BENCH_name.json> <report.ndjson>".to_string());
    };
    let text =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let b = Baseline::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let report = load_report(report_path)?;
    let opts = CheckOptions {
        max_span_ratio: flag_f64(&flags, "max-span-ratio")?,
        min_span_seconds: flag_f64(&flags, "min-span-seconds")?.unwrap_or(0.05),
        ignore_counters: flag_list(&flags, "ignore-counter"),
    };
    let findings = b.check(&report, &opts);
    for f in &findings {
        println!("{} {}", if f.gating { "GATE" } else { "info" }, f.message);
    }
    if passes(&findings) {
        println!(
            "check: {} matches baseline {:?} ({} counters, {} spans)",
            report_path,
            b.name,
            b.counters.len(),
            b.spans.len()
        );
        Ok(true)
    } else {
        eprintln!(
            "mss_report check: {report_path} gates against baseline {baseline_path}; \
             if the change is intentional, regenerate with `mss_report baseline`"
        );
        Ok(false)
    }
}

/// Running tallies the tail prints on exit.
#[derive(Default)]
struct TailStats {
    events: u64,
    progress: u64,
    heartbeats: u64,
    failures: u64,
    watchdog: u64,
    malformed: u64,
}

fn tail_cmd(rest: &[String]) -> Result<bool, String> {
    let (pos, flags) = parse_flags(rest, &["poll-ms", "idle-ms", "kinds"])?;
    let [path] = pos.as_slice() else {
        return Err("tail expects exactly one event stream".to_string());
    };
    let poll_ms = flag_f64(&flags, "poll-ms")?.unwrap_or(200.0).max(10.0);
    let idle_ms = flag_f64(&flags, "idle-ms")?.unwrap_or(2000.0).max(0.0);
    let all_kinds = match flag(&flags, "kinds") {
        None | Some("sweep") => false,
        Some("all") => true,
        Some(other) => return Err(format!("--kinds expects sweep or all, got {other:?}")),
    };

    let poll = Duration::from_millis(poll_ms as u64);
    let idle = Duration::from_millis(idle_ms as u64);
    let mut offset = 0u64;
    let mut carry = String::new();
    let mut stats = TailStats::default();
    let mut last_growth = Instant::now();
    loop {
        let grew = drain_stream(path, &mut offset, &mut carry, all_kinds, &mut stats)?;
        if grew {
            last_growth = Instant::now();
        } else {
            if last_growth.elapsed() >= idle {
                break;
            }
            std::thread::sleep(poll);
        }
    }
    if !carry.is_empty() {
        eprintln!("tail: stream ends mid-line ({} bytes torn)", carry.len());
    }
    println!(
        "tail: {} events ({} progress, {} heartbeats, {} failures, {} watchdog{})",
        stats.events,
        stats.progress,
        stats.heartbeats,
        stats.failures,
        stats.watchdog,
        if stats.malformed > 0 {
            format!(", {} malformed", stats.malformed)
        } else {
            String::new()
        }
    );
    Ok(true)
}

/// Reads whatever the stream has grown past `offset`, renders the complete
/// lines and keeps the torn tail in `carry`. Returns whether anything new
/// arrived; a not-yet-existing file counts as no growth (the writer may
/// still be starting up).
fn drain_stream(
    path: &str,
    offset: &mut u64,
    carry: &mut String,
    all_kinds: bool,
    stats: &mut TailStats,
) -> Result<bool, String> {
    let mut file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(format!("{path}: {e}")),
    };
    file.seek(std::io::SeekFrom::Start(*offset))
        .map_err(|e| format!("{path}: {e}"))?;
    let mut chunk = String::new();
    file.read_to_string(&mut chunk)
        .map_err(|e| format!("{path}: {e}"))?;
    if chunk.is_empty() {
        return Ok(false);
    }
    *offset += chunk.len() as u64;
    carry.push_str(&chunk);
    while let Some(nl) = carry.find('\n') {
        let line: String = carry.drain(..=nl).collect();
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        match render_stream_line(line, all_kinds) {
            Ok(Some(rendered)) => {
                stats.events += 1;
                match rendered.kind {
                    StreamKind::Progress => stats.progress += 1,
                    StreamKind::Heartbeat => stats.heartbeats += 1,
                    StreamKind::Failure => stats.failures += 1,
                    StreamKind::Watchdog => stats.watchdog += 1,
                    StreamKind::Other => {}
                }
                if let Some(text) = rendered.text {
                    println!("{text}");
                }
            }
            Ok(None) => {}
            Err(e) => {
                stats.malformed += 1;
                eprintln!("tail: skipping malformed line: {e}");
            }
        }
    }
    Ok(true)
}

enum StreamKind {
    Progress,
    Heartbeat,
    Failure,
    Watchdog,
    Other,
}

struct RenderedLine {
    kind: StreamKind,
    /// `None` when the event is counted but not displayed at this verbosity.
    text: Option<String>,
}

/// Renders one NDJSON stream line; `Ok(None)` for non-bus lines (meta,
/// aggregate report lines) which a tail silently passes over.
fn render_stream_line(line: &str, all_kinds: bool) -> Result<Option<RenderedLine>, String> {
    let v = Value::parse(line)?;
    if v.get("type").and_then(Value::as_str) != Some("bus") {
        return Ok(None);
    }
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("bus line without kind")?;
    let t = v
        .get("t_seconds")
        .and_then(Value::as_f64)
        .ok_or("bus line without t_seconds")?;
    let s = |key: &str| {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{kind} line missing {key:?}"))
    };
    let n = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{kind} line missing {key:?}"))
    };
    let f = |key: &str| v.get(key).and_then(Value::as_f64);
    let stamp = format!("[{t:8.3}s]");
    let rendered = match kind {
        "progress" => {
            let budget = f("budget_seconds")
                .map(|b| format!(", budget {b:.2}s"))
                .unwrap_or_default();
            RenderedLine {
                kind: StreamKind::Progress,
                text: Some(format!(
                    "{stamp} sweep {}: {}/{} done, {} retried{budget}",
                    s("sweep")?,
                    n("done")?,
                    n("total")?,
                    n("retried")?,
                )),
            }
        }
        "heartbeat" => RenderedLine {
            kind: StreamKind::Heartbeat,
            text: Some(format!(
                "{stamp} sweep {}: worker {} alive ({} tasks, busy {:.3}s)",
                s("sweep")?,
                n("worker")?,
                n("tasks_done")?,
                f("busy_seconds").unwrap_or(0.0),
            )),
        },
        "failure" => RenderedLine {
            kind: StreamKind::Failure,
            text: Some(format!(
                "{stamp} sweep {}: task {} FAILED ({}, {} attempts): {}",
                s("sweep")?,
                n("index")?,
                s("failure")?,
                n("attempts")?,
                s("message")?,
            )),
        },
        "watchdog" => RenderedLine {
            kind: StreamKind::Watchdog,
            text: Some(format!(
                "{stamp} WATCHDOG: span {} {:.2}x over baseline ({:.3e}s -> {:.3e}s)",
                s("span")?,
                f("ratio").unwrap_or(f64::NAN),
                f("baseline_seconds").unwrap_or(f64::NAN),
                f("run_seconds").unwrap_or(f64::NAN),
            )),
        },
        "gauge_set" => RenderedLine {
            kind: StreamKind::Other,
            text: all_kinds.then(|| {
                format!(
                    "{stamp} gauge {} = {}",
                    s("name").unwrap_or_else(|_| "?".into()),
                    f("value").map_or("null".into(), |x| format!("{x:.6e}")),
                )
            }),
        },
        "counter_delta" => RenderedLine {
            kind: StreamKind::Other,
            text: all_kinds.then(|| {
                format!(
                    "{stamp} counter {} += {}",
                    s("name").unwrap_or_else(|_| "?".into()),
                    n("delta").unwrap_or(0),
                )
            }),
        },
        "span_open" | "span_close" => RenderedLine {
            kind: StreamKind::Other,
            text: all_kinds.then(|| {
                format!(
                    "{stamp} {kind} {}",
                    s("path").unwrap_or_else(|_| "?".into())
                )
            }),
        },
        other => return Err(format!("unknown bus kind {other:?}")),
    };
    Ok(Some(rendered))
}
