//! `mss_report` — the profiling CLI over NDJSON run reports.
//!
//! ```text
//! mss_report summary <report.ndjson> [--top N]
//! mss_report diff <base.ndjson> <new.ndjson> [--max-span-ratio R]
//!                 [--min-span-seconds S] [--ignore-counter PREFIX]...
//! mss_report chrome-trace <report.ndjson> [--out FILE]
//! mss_report validate <report.ndjson>...
//! mss_report baseline <report.ndjson> --name NAME [--out FILE]
//! mss_report check <BENCH_name.json> <report.ndjson> [--max-span-ratio R]
//!                  [--min-span-seconds S] [--ignore-counter PREFIX]...
//! ```
//!
//! Exit codes: 0 = clean, 1 = gating regression or invalid report,
//! 2 = usage / I/O error.

use std::process::ExitCode;

use mss_prof::baseline::{passes, Baseline, CheckOptions};
use mss_prof::chrome::chrome_trace;
use mss_prof::diff::{diff, DiffOptions};
use mss_prof::report::Report;

const USAGE: &str = "\
usage: mss_report <command> [args]

commands:
  summary <report.ndjson> [--top N]
      Parse a run report and print the top-N hot paths (self-time
      attribution, per-thread ownership) plus headline counts.
  diff <base.ndjson> <new.ndjson> [--max-span-ratio R] [--min-span-seconds S]
       [--ignore-counter PREFIX]...
      Compare two runs. Counter or span-structure drift always gates
      (deterministic); span times gate when > R x slower (default 2.0)
      above the S-second noise floor (default 0.05). Exit 1 on regression.
  chrome-trace <report.ndjson> [--out FILE]
      Export an MSS_TRACE=1 run as Chrome trace-event JSON (stdout or
      FILE); load it in https://ui.perfetto.dev or chrome://tracing.
  validate <report.ndjson>...
      Strict schema validation of each report; exit 1 on the first
      invalid file.
  baseline <report.ndjson> --name NAME [--out FILE]
      Cut a structural BENCH_<NAME>.json baseline (counters + span
      structure + advisory mean times) from a run report.
  check <BENCH_name.json> <report.ndjson> [--max-span-ratio R]
        [--min-span-seconds S] [--ignore-counter PREFIX]...
      Check a fresh run against a committed baseline. Counters and span
      structure gate exactly; span times gate only when R is given.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("mss_report: {e}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Runs the CLI; `Ok(false)` means a gating regression (exit 1).
fn run(args: &[String]) -> Result<bool, String> {
    let (cmd, rest) = args.split_first().ok_or("missing command")?;
    match cmd.as_str() {
        "summary" => summary(rest),
        "diff" => diff_cmd(rest),
        "chrome-trace" => chrome_cmd(rest),
        "validate" => validate(rest),
        "baseline" => baseline_cmd(rest),
        "check" => check_cmd(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Parsed `--flag value` pairs, in order (flags may repeat).
type Flags = Vec<(String, String)>;

/// Splits positional arguments from `--flag value` pairs (and lists).
fn parse_flags(rest: &[String], known: &[&str]) -> Result<(Vec<String>, Flags), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if !known.contains(&name) {
                return Err(format!("unknown flag --{name}"));
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn flag_f64(flags: &[(String, String)], name: &str) -> Result<Option<f64>, String> {
    flag(flags, name)
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| format!("--{name} expects a number, got {v:?}"))
        })
        .transpose()
}

fn flag_list(flags: &[(String, String)], name: &str) -> Vec<String> {
    flags
        .iter()
        .filter(|(n, _)| n == name)
        .map(|(_, v)| v.clone())
        .collect()
}

fn load_report(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Report::parse_ndjson(&text).map_err(|e| format!("{path}: {e}"))
}

fn write_out(out: Option<&str>, content: &str, what: &str) -> Result<(), String> {
    match out {
        None => {
            print!("{content}");
            Ok(())
        }
        Some(path) => {
            if let Some(dir) = std::path::Path::new(path).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            std::fs::write(path, content).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("{what} -> {path}");
            Ok(())
        }
    }
}

fn summary(rest: &[String]) -> Result<bool, String> {
    let (pos, flags) = parse_flags(rest, &["top"])?;
    let [path] = pos.as_slice() else {
        return Err("summary expects exactly one report".to_string());
    };
    let top = flag(&flags, "top")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--top expects an integer, got {v:?}"))
        })
        .transpose()?
        .unwrap_or(15);
    let report = load_report(path)?;
    print!("{}", report.render_summary(top));
    Ok(true)
}

fn diff_opts(flags: &[(String, String)]) -> Result<DiffOptions, String> {
    let mut opts = DiffOptions {
        ignore_counters: flag_list(flags, "ignore-counter"),
        ..DiffOptions::default()
    };
    if let Some(r) = flag_f64(flags, "max-span-ratio")? {
        opts.max_span_ratio = r;
    }
    if let Some(s) = flag_f64(flags, "min-span-seconds")? {
        opts.min_span_seconds = s;
    }
    Ok(opts)
}

fn diff_cmd(rest: &[String]) -> Result<bool, String> {
    let (pos, flags) = parse_flags(
        rest,
        &["max-span-ratio", "min-span-seconds", "ignore-counter"],
    )?;
    let [base_path, new_path] = pos.as_slice() else {
        return Err("diff expects <base.ndjson> <new.ndjson>".to_string());
    };
    let opts = diff_opts(&flags)?;
    let base = load_report(base_path)?;
    let new = load_report(new_path)?;
    let d = diff(&base, &new, &opts);
    print!("{}", d.render());
    if d.is_clean() {
        Ok(true)
    } else {
        eprintln!("mss_report diff: gating regressions against {base_path}");
        Ok(false)
    }
}

fn chrome_cmd(rest: &[String]) -> Result<bool, String> {
    let (pos, flags) = parse_flags(rest, &["out"])?;
    let [path] = pos.as_slice() else {
        return Err("chrome-trace expects exactly one report".to_string());
    };
    let report = load_report(path)?;
    let trace = chrome_trace(&report)?;
    write_out(flag(&flags, "out"), &trace, "chrome trace")?;
    Ok(true)
}

fn validate(rest: &[String]) -> Result<bool, String> {
    if rest.is_empty() {
        return Err("validate expects at least one report".to_string());
    }
    for path in rest {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        match Report::parse_ndjson(&text) {
            Ok(r) => println!(
                "{path}: valid schema v{} ({} counters, {} histograms, {} spans, {} events)",
                r.meta.schema,
                r.counters.len(),
                r.histograms.len(),
                r.spans.len(),
                r.events.len()
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                return Ok(false);
            }
        }
    }
    Ok(true)
}

fn baseline_cmd(rest: &[String]) -> Result<bool, String> {
    let (pos, flags) = parse_flags(rest, &["name", "out"])?;
    let [path] = pos.as_slice() else {
        return Err("baseline expects exactly one report".to_string());
    };
    let name = flag(&flags, "name").ok_or("baseline requires --name")?;
    let report = load_report(path)?;
    let b = Baseline::from_report(name, &report);
    write_out(flag(&flags, "out"), &b.to_json(), "baseline")?;
    Ok(true)
}

fn check_cmd(rest: &[String]) -> Result<bool, String> {
    let (pos, flags) = parse_flags(
        rest,
        &["max-span-ratio", "min-span-seconds", "ignore-counter"],
    )?;
    let [baseline_path, report_path] = pos.as_slice() else {
        return Err("check expects <BENCH_name.json> <report.ndjson>".to_string());
    };
    let text =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let b = Baseline::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let report = load_report(report_path)?;
    let opts = CheckOptions {
        max_span_ratio: flag_f64(&flags, "max-span-ratio")?,
        min_span_seconds: flag_f64(&flags, "min-span-seconds")?.unwrap_or(0.05),
        ignore_counters: flag_list(&flags, "ignore-counter"),
    };
    let findings = b.check(&report, &opts);
    for f in &findings {
        println!("{} {}", if f.gating { "GATE" } else { "info" }, f.message);
    }
    if passes(&findings) {
        println!(
            "check: {} matches baseline {:?} ({} counters, {} spans)",
            report_path,
            b.name,
            b.counters.len(),
            b.spans.len()
        );
        Ok(true)
    } else {
        eprintln!(
            "mss_report check: {report_path} gates against baseline {baseline_path}; \
             if the change is intentional, regenerate with `mss_report baseline`"
        );
        Ok(false)
    }
}
