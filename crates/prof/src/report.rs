//! NDJSON run-report model: parsing, schema validation and hot-path
//! attribution.
//!
//! [`Report::parse_ndjson`] is the workspace's schema validator: it accepts
//! exactly the line shapes `mss_obs::Registry::to_ndjson` emits (schema v1,
//! the v2 profiling extensions, and the v3 telemetry extensions — gauges
//! plus event-bus streams/flight dumps) and rejects everything else with a
//! line-numbered error. CI round-trips every archived report through it, so
//! a writer regression can never ship silently.

use std::collections::BTreeMap;

use crate::json::Value;

/// The `meta` line: schema/mode plus the trace-buffer drop count (v2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Meta {
    /// NDJSON schema version (1, 2 or 3).
    pub schema: u32,
    /// Recording mode (`off`, `metrics`, `trace`, or `events` for v3
    /// event streams and flight-recorder dumps).
    pub mode: String,
    /// Trace events dropped on buffer overflow (0 for v1 reports); for
    /// `events` files, flight-ring evictions.
    pub dropped_events: u64,
}

/// One histogram line.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Smallest finite observation (`None` when the writer emitted null).
    pub min: Option<f64>,
    /// Largest finite observation.
    pub max: Option<f64>,
    /// Mean of finite observations (v2).
    pub mean: Option<f64>,
    /// Bucket-derived quantile estimates (v2).
    pub p50: Option<f64>,
    /// 90th percentile estimate (v2).
    pub p90: Option<f64>,
    /// 99th percentile estimate (v2).
    pub p99: Option<f64>,
    /// Sparse `[bucket_index, count]` pairs.
    pub buckets: Vec<(u32, u64)>,
}

/// One span-aggregate line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Number of times the path closed.
    pub count: u64,
    /// Total wall time across closings, seconds.
    pub total_seconds: f64,
    /// Total time minus child-span time (v2; `None` in v1 reports).
    pub self_seconds: Option<f64>,
    /// Fastest closing.
    pub min_seconds: f64,
    /// Slowest closing.
    pub max_seconds: f64,
    /// Per-thread ownership slices (v2).
    pub by_thread: Vec<ThreadSlice>,
}

impl SpanSummary {
    /// Mean seconds per closing.
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }

    /// Self time when the report carries it, total time otherwise — the
    /// attribution-preferring sort key for hot-path ranking.
    pub fn attributed_seconds(&self) -> f64 {
        self.self_seconds.unwrap_or(self.total_seconds)
    }
}

/// One `[tid, count, total_seconds]` ownership slice of a span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadSlice {
    /// Thread ordinal (0 = main, `1 + k` = `mss-exec` worker `k`).
    pub tid: u32,
    /// Closings on that thread.
    pub count: u64,
    /// Wall time accumulated on that thread, seconds.
    pub total_seconds: f64,
}

/// One trace event (a single span closing, trace mode only).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Span path.
    pub path: String,
    /// Recording thread's ordinal (v2; 0 for v1 reports).
    pub tid: u32,
    /// Start offset from the registry epoch, seconds.
    pub start_seconds: f64,
    /// Duration, seconds.
    pub duration_seconds: f64,
}

/// One validated event-bus line from a v3 event stream or flight dump.
///
/// The common envelope (`kind`, `seq`, `tid`, `t_seconds`) is typed; the
/// kind-specific fields are validated at parse time and stay accessible
/// through the retained JSON [`Value`] (see [`BusRecord::str_field`] /
/// [`BusRecord::u64_field`] / [`BusRecord::num_field`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BusRecord {
    /// Event kind (`progress`, `heartbeat`, `failure`, `span_open`,
    /// `span_close`, `counter_delta`, `gauge_set`, `watchdog`).
    pub kind: String,
    /// Process-wide publish sequence number.
    pub seq: u64,
    /// Publishing thread's ordinal.
    pub tid: u32,
    /// Seconds since the bus epoch.
    pub t_seconds: f64,
    /// The full parsed line, for kind-specific fields.
    pub value: Value,
}

impl BusRecord {
    /// A kind-specific string field, if present.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.value.get(key).and_then(Value::as_str)
    }

    /// A kind-specific unsigned-integer field, if present.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.value.get(key).and_then(Value::as_u64)
    }

    /// A kind-specific numeric field, if present and non-null.
    pub fn num_field(&self, key: &str) -> Option<f64> {
        self.value.get(key).and_then(Value::as_f64)
    }
}

/// A fully parsed and validated NDJSON run report.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The `meta` line.
    pub meta: Meta,
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → last value (v3; `None` when the writer emitted null for
    /// a non-finite value).
    pub gauges: BTreeMap<String, Option<f64>>,
    /// Histogram name → summary.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Span path → aggregate.
    pub spans: BTreeMap<String, SpanSummary>,
    /// Individual trace events, in emission order.
    pub events: Vec<EventRecord>,
    /// Event-bus lines (v3 `events` files), in stream order.
    pub bus: Vec<BusRecord>,
}

/// Largest schema version this parser understands.
pub const MAX_SCHEMA: u32 = 3;

impl Report {
    /// Parses and validates an NDJSON run report.
    ///
    /// Structural requirements: the first line is the only `meta` line, its
    /// schema is 1..=[`MAX_SCHEMA`], every line is a standalone JSON object
    /// of a known `type` with the fields that type requires, and no
    /// counter/gauge/histogram/span name repeats. v2-only fields are
    /// optional on v1 reports and mandatory on v2+. `gauge` and `bus` lines
    /// require schema ≥ 3; `bus` lines are only valid in mode `events`
    /// files (live streams / flight dumps), which in turn carry nothing
    /// else.
    ///
    /// # Errors
    ///
    /// A message naming the offending line number and rule.
    pub fn parse_ndjson(text: &str) -> Result<Report, String> {
        let mut meta: Option<Meta> = None;
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        let mut spans = BTreeMap::new();
        let mut events = Vec::new();
        let mut bus = Vec::new();

        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                return Err(format!("line {lineno}: blank line inside report"));
            }
            let v = Value::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
            let ty = v
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {lineno}: missing \"type\""))?
                .to_string();
            let schema = meta.as_ref().map_or(MAX_SCHEMA, |m| m.schema);
            match ty.as_str() {
                "meta" => {
                    if meta.is_some() {
                        return Err(format!("line {lineno}: duplicate meta line"));
                    }
                    if lineno != 1 {
                        return Err(format!("line {lineno}: meta must be the first line"));
                    }
                    meta = Some(parse_meta(&v).map_err(|e| format!("line {lineno}: {e}"))?);
                }
                _ if meta.is_none() => {
                    return Err(format!("line {lineno}: first line must be meta"));
                }
                "counter" => {
                    let name = req_str(&v, "name").map_err(|e| format!("line {lineno}: {e}"))?;
                    let value = req_u64(&v, "value").map_err(|e| format!("line {lineno}: {e}"))?;
                    if counters.insert(name.clone(), value).is_some() {
                        return Err(format!("line {lineno}: duplicate counter {name:?}"));
                    }
                }
                "histogram" => {
                    let name = req_str(&v, "name").map_err(|e| format!("line {lineno}: {e}"))?;
                    let h =
                        parse_histogram(&v, schema).map_err(|e| format!("line {lineno}: {e}"))?;
                    if histograms.insert(name.clone(), h).is_some() {
                        return Err(format!("line {lineno}: duplicate histogram {name:?}"));
                    }
                }
                "span" => {
                    let path = req_str(&v, "path").map_err(|e| format!("line {lineno}: {e}"))?;
                    let s = parse_span(&v, schema).map_err(|e| format!("line {lineno}: {e}"))?;
                    if spans.insert(path.clone(), s).is_some() {
                        return Err(format!("line {lineno}: duplicate span {path:?}"));
                    }
                }
                "event" => {
                    events
                        .push(parse_event(&v, schema).map_err(|e| format!("line {lineno}: {e}"))?);
                }
                "gauge" => {
                    if schema < 3 {
                        return Err(format!("line {lineno}: gauge lines require schema >= 3"));
                    }
                    let name = req_str(&v, "name").map_err(|e| format!("line {lineno}: {e}"))?;
                    let value =
                        req_num_or_null(&v, "value").map_err(|e| format!("line {lineno}: {e}"))?;
                    if gauges.insert(name.clone(), value).is_some() {
                        return Err(format!("line {lineno}: duplicate gauge {name:?}"));
                    }
                }
                "bus" => {
                    if schema < 3 {
                        return Err(format!("line {lineno}: bus lines require schema >= 3"));
                    }
                    bus.push(parse_bus(&v).map_err(|e| format!("line {lineno}: {e}"))?);
                }
                other => {
                    return Err(format!("line {lineno}: unknown line type {other:?}"));
                }
            }
        }

        let meta = meta.ok_or_else(|| "empty report: no meta line".to_string())?;
        if meta.mode == "off" && (!counters.is_empty() || !gauges.is_empty() || !spans.is_empty()) {
            return Err("mode \"off\" report carries data lines".to_string());
        }
        let is_events = meta.mode == "events";
        if !bus.is_empty() && !is_events {
            return Err(format!(
                "bus lines require mode \"events\", got {:?}",
                meta.mode
            ));
        }
        if is_events
            && !(counters.is_empty()
                && gauges.is_empty()
                && histograms.is_empty()
                && spans.is_empty()
                && events.is_empty())
        {
            return Err("mode \"events\" file carries aggregate report lines".to_string());
        }
        Ok(Report {
            meta,
            counters,
            gauges,
            histograms,
            spans,
            events,
            bus,
        })
    }

    /// Span paths ranked hottest-first by [`SpanSummary::attributed_seconds`]
    /// (self time when available), ties broken alphabetically for
    /// deterministic output.
    pub fn hot_paths(&self, top: usize) -> Vec<(&str, &SpanSummary)> {
        let mut ranked: Vec<(&str, &SpanSummary)> =
            self.spans.iter().map(|(p, s)| (p.as_str(), s)).collect();
        ranked.sort_by(|a, b| {
            b.1.attributed_seconds()
                .total_cmp(&a.1.attributed_seconds())
                .then_with(|| a.0.cmp(b.0))
        });
        ranked.truncate(top);
        ranked
    }

    /// Renders the human-facing summary: meta, the top-N hot paths with
    /// self/total attribution and ownership, and headline counters.
    pub fn render_summary(&self, top: usize) -> String {
        let mut out = format!(
            "schema v{} | mode {} | {} counters | {} gauges | {} histograms | {} spans | {} events | {} bus",
            self.meta.schema,
            self.meta.mode,
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len(),
            self.spans.len(),
            self.events.len(),
            self.bus.len(),
        );
        if self.meta.dropped_events > 0 {
            out.push_str(&format!(
                " | WARNING: {} trace events dropped (timeline truncated)",
                self.meta.dropped_events
            ));
        }
        out.push('\n');
        let total_attributed: f64 = self
            .spans
            .values()
            .map(SpanSummary::attributed_seconds)
            .sum();
        out.push_str(&format!(
            "\n== hot paths (top {top} by self time) ==\n{:<52} {:>8} {:>12} {:>12} {:>7} {:>8}\n",
            "path", "count", "self", "total", "%self", "threads"
        ));
        for (path, s) in self.hot_paths(top) {
            let share = if total_attributed > 0.0 {
                100.0 * s.attributed_seconds() / total_attributed
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<52} {:>8} {:>12} {:>12} {:>6.1}% {:>8}\n",
                path,
                s.count,
                format_seconds(s.attributed_seconds()),
                format_seconds(s.total_seconds),
                share,
                s.by_thread.len().max(1),
            ));
        }
        out
    }
}

/// Renders seconds with an adaptive unit.
pub fn format_seconds(s: f64) -> String {
    let abs = s.abs();
    if abs >= 1.0 {
        format!("{s:.3} s")
    } else if abs >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if abs >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

/// A required numeric field; JSON `null` (the writer's spelling of a
/// non-finite value) maps to `None`.
fn req_num_or_null(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        Some(n) if n.is_null() => Ok(None),
        Some(n) => n
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} is not a number or null")),
        None => Err(format!("missing numeric field {key:?}")),
    }
}

fn req_num(v: &Value, key: &str) -> Result<f64, String> {
    req_num_or_null(v, key)?.ok_or_else(|| format!("field {key:?} must be finite, got null"))
}

fn parse_meta(v: &Value) -> Result<Meta, String> {
    let schema =
        u32::try_from(req_u64(v, "schema")?).map_err(|_| "schema out of range".to_string())?;
    if schema == 0 || schema > MAX_SCHEMA {
        return Err(format!(
            "unsupported schema version {schema} (max {MAX_SCHEMA})"
        ));
    }
    let mode = req_str(v, "mode")?;
    let known = match mode.as_str() {
        "off" | "metrics" | "trace" => true,
        "events" => schema >= 3,
        _ => false,
    };
    if !known {
        return Err(format!("unknown mode {mode:?} for schema {schema}"));
    }
    let dropped_events = if schema >= 2 {
        req_u64(v, "dropped_events")?
    } else {
        0
    };
    Ok(Meta {
        schema,
        mode,
        dropped_events,
    })
}

fn parse_histogram(v: &Value, schema: u32) -> Result<HistogramSummary, String> {
    let buckets_raw = v
        .get("buckets")
        .and_then(Value::as_arr)
        .ok_or_else(|| "missing array field \"buckets\"".to_string())?;
    let mut buckets = Vec::with_capacity(buckets_raw.len());
    for b in buckets_raw {
        let pair = b
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| "bucket entries must be [index, count] pairs".to_string())?;
        let idx = pair[0]
            .as_u64()
            .and_then(|i| u32::try_from(i).ok())
            .ok_or_else(|| "bucket index must be a small integer".to_string())?;
        let count = pair[1]
            .as_u64()
            .ok_or_else(|| "bucket count must be an integer".to_string())?;
        buckets.push((idx, count));
    }
    let (mean, p50, p90, p99) = if schema >= 2 {
        (
            req_num_or_null(v, "mean")?,
            req_num_or_null(v, "p50")?,
            req_num_or_null(v, "p90")?,
            req_num_or_null(v, "p99")?,
        )
    } else {
        (None, None, None, None)
    };
    Ok(HistogramSummary {
        count: req_u64(v, "count")?,
        sum: req_num(v, "sum")?,
        min: req_num_or_null(v, "min")?,
        max: req_num_or_null(v, "max")?,
        mean,
        p50,
        p90,
        p99,
        buckets,
    })
}

fn parse_span(v: &Value, schema: u32) -> Result<SpanSummary, String> {
    let (self_seconds, by_thread) = if schema >= 2 {
        let raw = v
            .get("by_thread")
            .and_then(Value::as_arr)
            .ok_or_else(|| "missing array field \"by_thread\"".to_string())?;
        let mut slices = Vec::with_capacity(raw.len());
        for t in raw {
            let triple = t.as_arr().filter(|p| p.len() == 3).ok_or_else(|| {
                "by_thread entries must be [tid, count, total_seconds]".to_string()
            })?;
            slices.push(ThreadSlice {
                tid: triple[0]
                    .as_u64()
                    .and_then(|i| u32::try_from(i).ok())
                    .ok_or_else(|| "by_thread tid must be a small integer".to_string())?,
                count: triple[1]
                    .as_u64()
                    .ok_or_else(|| "by_thread count must be an integer".to_string())?,
                total_seconds: triple[2]
                    .as_f64()
                    .ok_or_else(|| "by_thread total must be a number".to_string())?,
            });
        }
        (Some(req_num(v, "self_seconds")?), slices)
    } else {
        (None, Vec::new())
    };
    Ok(SpanSummary {
        count: req_u64(v, "count")?,
        total_seconds: req_num(v, "total_seconds")?,
        self_seconds,
        min_seconds: req_num(v, "min_seconds")?,
        max_seconds: req_num(v, "max_seconds")?,
        by_thread,
    })
}

fn parse_event(v: &Value, schema: u32) -> Result<EventRecord, String> {
    let tid = if schema >= 2 {
        u32::try_from(req_u64(v, "tid")?).map_err(|_| "tid out of range".to_string())?
    } else {
        0
    };
    Ok(EventRecord {
        path: req_str(v, "path")?,
        tid,
        start_seconds: req_num(v, "start_seconds")?,
        duration_seconds: req_num(v, "duration_seconds")?,
    })
}

/// Validates one event-bus line: the common envelope plus the fields each
/// kind requires (matching `mss_obs::events::BusEvent::to_json_line`).
fn parse_bus(v: &Value) -> Result<BusRecord, String> {
    let kind = req_str(v, "kind")?;
    let seq = req_u64(v, "seq")?;
    let tid = u32::try_from(req_u64(v, "tid")?).map_err(|_| "tid out of range".to_string())?;
    let t_seconds = req_num(v, "t_seconds")?;
    match kind.as_str() {
        "span_open" => {
            req_str(v, "path")?;
        }
        "span_close" => {
            req_str(v, "path")?;
            req_num(v, "duration_seconds")?;
        }
        "counter_delta" => {
            req_str(v, "name")?;
            req_u64(v, "delta")?;
        }
        "gauge_set" => {
            req_str(v, "name")?;
            req_num_or_null(v, "value")?;
        }
        "progress" => {
            req_str(v, "sweep")?;
            let done = req_u64(v, "done")?;
            let total = req_u64(v, "total")?;
            req_u64(v, "retried")?;
            req_num_or_null(v, "budget_seconds")?;
            if done > total {
                return Err(format!("progress done {done} exceeds total {total}"));
            }
        }
        "heartbeat" => {
            req_str(v, "sweep")?;
            req_u64(v, "worker")?;
            req_u64(v, "tasks_done")?;
            req_num(v, "busy_seconds")?;
        }
        "failure" => {
            req_str(v, "sweep")?;
            req_u64(v, "index")?;
            req_u64(v, "attempts")?;
            req_str(v, "failure")?;
            req_str(v, "message")?;
        }
        "watchdog" => {
            req_str(v, "span")?;
            req_num(v, "baseline_seconds")?;
            req_num(v, "run_seconds")?;
            req_num(v, "ratio")?;
        }
        other => return Err(format!("unknown bus kind {other:?}")),
    }
    Ok(BusRecord {
        kind,
        seq,
        tid,
        t_seconds,
        value: v.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_obs::{Mode, Registry};

    fn live_report(mode: Mode) -> String {
        let reg = Registry::new(mode);
        reg.counter_add("layer.items", 12);
        reg.gauge_set("layer.occupancy", 17.0);
        reg.record_value("layer.latency", 2e-9);
        reg.record_value("layer.latency", 3e-9);
        {
            let _outer = reg.span("outer");
            let _inner = reg.span("inner");
        }
        reg.to_ndjson()
    }

    #[test]
    fn parses_a_live_metrics_report() {
        let text = live_report(Mode::Metrics);
        let r = Report::parse_ndjson(&text).expect("valid report");
        assert_eq!(r.meta.schema, 3);
        assert_eq!(r.meta.mode, "metrics");
        assert_eq!(r.meta.dropped_events, 0);
        assert_eq!(r.counters["layer.items"], 12);
        assert_eq!(r.gauges["layer.occupancy"], Some(17.0));
        let h = &r.histograms["layer.latency"];
        assert_eq!(h.count, 2);
        assert!(h.p50.is_some() && h.p99.is_some());
        let outer = &r.spans["outer"];
        assert!(outer.self_seconds.is_some());
        assert!(!outer.by_thread.is_empty());
        assert!(r.spans.contains_key("outer/inner"));
        assert!(r.events.is_empty());
    }

    #[test]
    fn parses_a_live_trace_report_with_events() {
        let text = live_report(Mode::Trace);
        let r = Report::parse_ndjson(&text).expect("valid report");
        assert_eq!(r.events.len(), 2);
        assert!(r.events.iter().any(|e| e.path == "outer/inner"));
    }

    #[test]
    fn accepts_schema_v1_reports() {
        let v1 = concat!(
            "{\"type\":\"meta\",\"schema\":1,\"mode\":\"metrics\"}\n",
            "{\"type\":\"counter\",\"name\":\"a\",\"value\":3}\n",
            "{\"type\":\"histogram\",\"name\":\"h\",\"count\":1,\"sum\":2e0,\"min\":2e0,\"max\":2e0,\"buckets\":[[37,1]]}\n",
            "{\"type\":\"span\",\"path\":\"p\",\"count\":1,\"total_seconds\":1e-3,\"min_seconds\":1e-3,\"max_seconds\":1e-3}\n",
        );
        let r = Report::parse_ndjson(v1).expect("v1 accepted");
        assert_eq!(r.meta.schema, 1);
        assert_eq!(r.spans["p"].self_seconds, None);
        assert!(r.spans["p"].by_thread.is_empty());
    }

    #[test]
    fn rejects_structural_violations() {
        let cases: &[(&str, &str)] = &[
            ("", "empty"),
            ("{\"type\":\"counter\",\"name\":\"a\",\"value\":1}", "no meta first"),
            (
                "{\"type\":\"meta\",\"schema\":99,\"mode\":\"metrics\",\"dropped_events\":0}",
                "future schema",
            ),
            (
                "{\"type\":\"meta\",\"schema\":2,\"mode\":\"warp\",\"dropped_events\":0}",
                "unknown mode",
            ),
            (
                concat!(
                    "{\"type\":\"meta\",\"schema\":2,\"mode\":\"metrics\",\"dropped_events\":0}\n",
                    "{\"type\":\"meta\",\"schema\":2,\"mode\":\"metrics\",\"dropped_events\":0}",
                ),
                "duplicate meta",
            ),
            (
                concat!(
                    "{\"type\":\"meta\",\"schema\":2,\"mode\":\"metrics\",\"dropped_events\":0}\n",
                    "{\"type\":\"counter\",\"name\":\"a\",\"value\":1}\n",
                    "{\"type\":\"counter\",\"name\":\"a\",\"value\":2}",
                ),
                "duplicate counter",
            ),
            (
                concat!(
                    "{\"type\":\"meta\",\"schema\":2,\"mode\":\"metrics\",\"dropped_events\":0}\n",
                    "{\"type\":\"mystery\"}",
                ),
                "unknown type",
            ),
            (
                concat!(
                    "{\"type\":\"meta\",\"schema\":2,\"mode\":\"metrics\",\"dropped_events\":0}\n",
                    "{\"type\":\"counter\",\"name\":\"a\",\"value\":-1}",
                ),
                "negative counter",
            ),
            (
                concat!(
                    "{\"type\":\"meta\",\"schema\":2,\"mode\":\"metrics\",\"dropped_events\":0}\n",
                    "{\"type\":\"span\",\"path\":\"p\",\"count\":1,\"total_seconds\":1e-3,\"min_seconds\":1e-3,\"max_seconds\":1e-3}",
                ),
                "v2 span without self_seconds/by_thread",
            ),
            (
                "{\"type\":\"meta\",\"schema\":2,\"mode\":\"metrics\",\"dropped_events\":0}\nnot json",
                "garbage line",
            ),
        ];
        for (text, why) in cases {
            assert!(Report::parse_ndjson(text).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn hot_paths_rank_by_self_time() {
        let text = concat!(
            "{\"type\":\"meta\",\"schema\":2,\"mode\":\"metrics\",\"dropped_events\":0}\n",
            "{\"type\":\"span\",\"path\":\"parent\",\"count\":1,\"total_seconds\":1e0,\"self_seconds\":1e-2,\"min_seconds\":1e0,\"max_seconds\":1e0,\"by_thread\":[[0,1,1e0]]}\n",
            "{\"type\":\"span\",\"path\":\"parent/leaf\",\"count\":4,\"total_seconds\":9.9e-1,\"self_seconds\":9.9e-1,\"min_seconds\":2e-1,\"max_seconds\":3e-1,\"by_thread\":[[1,2,5e-1],[2,2,4.9e-1]]}\n",
        );
        let r = Report::parse_ndjson(text).unwrap();
        let hot = r.hot_paths(10);
        assert_eq!(hot[0].0, "parent/leaf", "leaf owns the self time");
        assert_eq!(hot[1].0, "parent");
        let summary = r.render_summary(5);
        assert!(summary.contains("parent/leaf"), "{summary}");
        assert!(summary.contains("schema v2"), "{summary}");
    }

    #[test]
    fn summary_warns_on_dropped_events() {
        let text = "{\"type\":\"meta\",\"schema\":2,\"mode\":\"trace\",\"dropped_events\":17}\n";
        let r = Report::parse_ndjson(text).unwrap();
        assert!(r.render_summary(3).contains("17 trace events dropped"));
    }

    #[test]
    fn format_seconds_picks_sane_units() {
        assert_eq!(format_seconds(2.5), "2.500 s");
        assert_eq!(format_seconds(2.5e-3), "2.500 ms");
        assert_eq!(format_seconds(2.5e-6), "2.500 µs");
        assert_eq!(format_seconds(2.5e-9), "2.5 ns");
    }
}
