//! Report diffing: compares two NDJSON runs and separates deterministic
//! regressions from wall-clock noise.
//!
//! The repo's determinism contract (fixed seed ⇒ bit-identical results at
//! any thread count) extends to its counters: two runs of the same workload
//! must produce *identical* counter values, so any counter delta is a real
//! behavioural change and gates. Span *times* are wall-clock and inherently
//! noisy, so they gate only through a ratio threshold over a noise floor:
//! a span must both get ≥ `max_span_ratio`× slower per closing *and* be big
//! enough (`min_span_seconds` total) for the slowdown to be signal.

use crate::report::Report;

/// Noise-tolerance policy for a diff.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// A common span gates when `new_mean > base_mean * max_span_ratio`.
    pub max_span_ratio: f64,
    /// Spans whose total time stays under this (in both runs) never gate —
    /// micro-spans are timer-granularity noise.
    pub min_span_seconds: f64,
    /// Counter name prefixes excluded from gating (still listed).
    pub ignore_counters: Vec<String>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            max_span_ratio: 2.0,
            min_span_seconds: 0.05,
            ignore_counters: Vec::new(),
        }
    }
}

impl DiffOptions {
    fn ignored(&self, name: &str) -> bool {
        self.ignore_counters.iter().any(|p| name.starts_with(p))
    }
}

/// One counter difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterChange {
    /// Counter name.
    pub name: String,
    /// Value in the base run (`None` = absent).
    pub base: Option<u64>,
    /// Value in the new run (`None` = absent).
    pub new: Option<u64>,
    /// Whether this change gates (not on an ignore prefix).
    pub gating: bool,
}

/// One span compared across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanChange {
    /// Span path.
    pub path: String,
    /// Mean seconds per closing in the base run.
    pub base_mean: f64,
    /// Mean seconds per closing in the new run.
    pub new_mean: f64,
    /// `new_mean / base_mean` (∞ when base is 0 and new is not).
    pub ratio: f64,
    /// Count mismatch (deterministic structure changed) — always gates.
    pub count_mismatch: Option<(u64, u64)>,
    /// True when the slowdown clears both the ratio and the noise floor.
    pub time_regression: bool,
}

/// The outcome of diffing two reports.
#[derive(Debug, Clone, Default)]
pub struct ReportDiff {
    /// Counters added, removed, or changed.
    pub counter_changes: Vec<CounterChange>,
    /// Spans present in only one run (path, present-in-base).
    pub span_presence: Vec<(String, bool)>,
    /// Common spans with their timing comparison.
    pub span_changes: Vec<SpanChange>,
}

impl ReportDiff {
    /// Gating counter differences (deterministic regressions).
    pub fn counter_regressions(&self) -> impl Iterator<Item = &CounterChange> {
        self.counter_changes.iter().filter(|c| c.gating)
    }

    /// Gating span differences: structural count mismatches plus timing
    /// regressions that cleared the noise tolerance.
    pub fn span_regressions(&self) -> impl Iterator<Item = &SpanChange> {
        self.span_changes
            .iter()
            .filter(|s| s.count_mismatch.is_some() || s.time_regression)
    }

    /// True when nothing gates: the new run is no worse than the base.
    pub fn is_clean(&self) -> bool {
        self.counter_regressions().next().is_none()
            && self.span_regressions().next().is_none()
            && self.span_presence.is_empty()
    }

    /// Renders the human-facing diff report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let counter_regs = self.counter_regressions().count();
        out.push_str(&format!(
            "counters: {} change(s), {} gating\n",
            self.counter_changes.len(),
            counter_regs
        ));
        for c in &self.counter_changes {
            let fmt = |v: Option<u64>| v.map_or("absent".to_string(), |n| n.to_string());
            out.push_str(&format!(
                "  {} {:<52} {} -> {}\n",
                if c.gating { "GATE" } else { "info" },
                c.name,
                fmt(c.base),
                fmt(c.new)
            ));
        }
        for (path, in_base) in &self.span_presence {
            out.push_str(&format!(
                "  GATE span {:<47} {}\n",
                path,
                if *in_base { "disappeared" } else { "appeared" }
            ));
        }
        let span_regs: Vec<&SpanChange> = self.span_regressions().collect();
        out.push_str(&format!(
            "spans: {} compared, {} gating\n",
            self.span_changes.len(),
            span_regs.len()
        ));
        for s in &span_regs {
            if let Some((b, n)) = s.count_mismatch {
                out.push_str(&format!("  GATE span {:<47} count {b} -> {n}\n", s.path));
            }
            if s.time_regression {
                out.push_str(&format!(
                    "  GATE span {:<47} mean {:.3e}s -> {:.3e}s ({:.2}x)\n",
                    s.path, s.base_mean, s.new_mean, s.ratio
                ));
            }
        }
        if self.is_clean() {
            out.push_str("clean: no counter regressions, no span regressions\n");
        }
        out
    }
}

/// Diffs `new` against `base` under the given noise tolerance.
pub fn diff(base: &Report, new: &Report, opts: &DiffOptions) -> ReportDiff {
    let mut out = ReportDiff::default();

    let names: std::collections::BTreeSet<&String> =
        base.counters.keys().chain(new.counters.keys()).collect();
    for name in names {
        let b = base.counters.get(name).copied();
        let n = new.counters.get(name).copied();
        if b != n {
            out.counter_changes.push(CounterChange {
                name: name.clone(),
                base: b,
                new: n,
                gating: !opts.ignored(name),
            });
        }
    }

    let paths: std::collections::BTreeSet<&String> =
        base.spans.keys().chain(new.spans.keys()).collect();
    for path in paths {
        match (base.spans.get(path), new.spans.get(path)) {
            (Some(b), Some(n)) => {
                let base_mean = b.mean_seconds();
                let new_mean = n.mean_seconds();
                let ratio = if base_mean > 0.0 {
                    new_mean / base_mean
                } else if new_mean > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                };
                let above_floor = b.total_seconds.max(n.total_seconds) >= opts.min_span_seconds;
                out.span_changes.push(SpanChange {
                    path: path.clone(),
                    base_mean,
                    new_mean,
                    ratio,
                    count_mismatch: (b.count != n.count).then_some((b.count, n.count)),
                    time_regression: above_floor && ratio > opts.max_span_ratio,
                });
            }
            (Some(_), None) => out.span_presence.push((path.clone(), true)),
            (None, Some(_)) => out.span_presence.push((path.clone(), false)),
            (None, None) => unreachable!("path came from one of the key sets"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_obs::{Mode, Registry};

    fn report_with(counter: u64, spin_ms: u64) -> Report {
        let reg = Registry::new(Mode::Metrics);
        reg.counter_add("work.items", counter);
        {
            let _g = reg.span("work");
            std::thread::sleep(std::time::Duration::from_millis(spin_ms));
        }
        Report::parse_ndjson(&reg.to_ndjson()).expect("valid report")
    }

    #[test]
    fn identical_runs_diff_clean() {
        let a = report_with(10, 1);
        let b = report_with(10, 1);
        let d = diff(&a, &b, &DiffOptions::default());
        assert!(d.is_clean(), "{}", d.render());
        assert_eq!(d.counter_changes.len(), 0);
        assert!(d.render().contains("clean"));
    }

    #[test]
    fn counter_drift_always_gates() {
        let a = report_with(10, 1);
        let b = report_with(11, 1);
        let d = diff(&a, &b, &DiffOptions::default());
        assert!(!d.is_clean());
        let regs: Vec<_> = d.counter_regressions().collect();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "work.items");
        assert_eq!((regs[0].base, regs[0].new), (Some(10), Some(11)));
    }

    #[test]
    fn ignored_counter_prefixes_do_not_gate() {
        let a = report_with(10, 1);
        let b = report_with(11, 1);
        let opts = DiffOptions {
            ignore_counters: vec!["work.".to_string()],
            ..DiffOptions::default()
        };
        let d = diff(&a, &b, &opts);
        assert!(d.is_clean(), "{}", d.render());
        assert_eq!(d.counter_changes.len(), 1, "still listed as info");
    }

    #[test]
    fn slow_spans_gate_only_above_the_noise_floor() {
        let fast = report_with(10, 2);
        let slow = report_with(10, 40);
        // Floor above both totals: a 20x slowdown on a micro-span is noise.
        let lenient = DiffOptions {
            min_span_seconds: 10.0,
            ..DiffOptions::default()
        };
        assert!(diff(&fast, &slow, &lenient).is_clean());
        // Floor below the slow run: the same slowdown now gates.
        let strict = DiffOptions {
            min_span_seconds: 0.02,
            ..DiffOptions::default()
        };
        let d = diff(&fast, &slow, &strict);
        let regs: Vec<_> = d.span_regressions().collect();
        assert_eq!(regs.len(), 1, "{}", d.render());
        assert!(regs[0].time_regression);
        assert!(regs[0].ratio > 2.0);
        // Speedups never gate, whatever the floor.
        assert!(diff(&slow, &fast, &strict).is_clean());
    }

    #[test]
    fn appearing_and_disappearing_spans_gate() {
        let a = report_with(10, 1);
        let reg = Registry::new(Mode::Metrics);
        reg.counter_add("work.items", 10);
        {
            let _g = reg.span("work");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _g = reg.span("surprise");
        }
        let b = Report::parse_ndjson(&reg.to_ndjson()).unwrap();
        let d = diff(&a, &b, &DiffOptions::default());
        assert!(!d.is_clean());
        assert_eq!(d.span_presence, vec![("surprise".to_string(), false)]);
        assert!(d.render().contains("appeared"), "{}", d.render());
    }

    #[test]
    fn span_count_mismatch_gates_as_structural() {
        let a = report_with(10, 1);
        let reg = Registry::new(Mode::Metrics);
        reg.counter_add("work.items", 10);
        for _ in 0..2 {
            let _g = reg.span("work");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let b = Report::parse_ndjson(&reg.to_ndjson()).unwrap();
        let d = diff(&a, &b, &DiffOptions::default());
        let regs: Vec<_> = d.span_regressions().collect();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].count_mismatch, Some((1, 2)));
    }
}
