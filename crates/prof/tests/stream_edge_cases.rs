//! Event-stream edge cases for the `mss-prof` parser: everything a live
//! NDJSON stream can throw at it — non-finite literals, a crash mid-write,
//! an empty file, duplicated ids — must come back as a structured `Err`
//! naming the offending line, never a panic. Each case runs under
//! `catch_unwind` so a panic is reported as the distinct failure it is.

use mss_prof::{Report, Value};

const META_EVENTS: &str =
    "{\"type\":\"meta\",\"schema\":3,\"mode\":\"events\",\"dropped_events\":0}";
const META_METRICS: &str =
    "{\"type\":\"meta\",\"schema\":3,\"mode\":\"metrics\",\"dropped_events\":0}";

fn progress_line(seq: u64, done: u64, total: u64) -> String {
    format!(
        "{{\"type\":\"bus\",\"kind\":\"progress\",\"seq\":{seq},\"tid\":0,\"t_seconds\":1e-1,\
         \"sweep\":\"sw\",\"done\":{done},\"total\":{total},\"retried\":0,\"budget_seconds\":null}}"
    )
}

/// Parses under `catch_unwind`, so "panicked" and "rejected" are told apart.
fn parse_caught(text: &str) -> Result<Report, String> {
    std::panic::catch_unwind(|| Report::parse_ndjson(text))
        .unwrap_or_else(|_| panic!("parser panicked on: {text:?}"))
}

#[test]
fn a_well_formed_event_stream_parses() {
    let text = format!(
        "{META_EVENTS}\n{}\n{}\n\
         {{\"type\":\"bus\",\"kind\":\"heartbeat\",\"seq\":2,\"tid\":1,\"t_seconds\":2e-1,\
          \"sweep\":\"sw\",\"worker\":1,\"tasks_done\":2,\"busy_seconds\":1e-1}}\n\
         {{\"type\":\"bus\",\"kind\":\"failure\",\"seq\":3,\"tid\":1,\"t_seconds\":3e-1,\
          \"sweep\":\"sw\",\"index\":5,\"attempts\":2,\"failure\":\"panicked\",\"message\":\"boom\"}}\n",
        progress_line(0, 1, 4),
        progress_line(1, 2, 4),
    );
    let report = parse_caught(&text).expect("valid stream");
    assert_eq!(report.meta.mode, "events");
    assert_eq!(report.bus.len(), 4);
    assert_eq!(report.bus[0].kind, "progress");
    assert_eq!(report.bus[0].u64_field("done"), Some(1));
    assert_eq!(report.bus[3].str_field("failure"), Some("panicked"));
}

#[test]
fn nan_and_inf_literals_are_rejected_not_parsed() {
    // JSON has no NaN/Infinity tokens; a writer that leaks them must be
    // caught at the lexer, not silently coerced.
    for bad in ["NaN", "-NaN", "Infinity", "-Infinity", "inf", "1e999x"] {
        let line = format!(
            "{{\"type\":\"bus\",\"kind\":\"gauge_set\",\"seq\":0,\"tid\":0,\
             \"t_seconds\":0e0,\"name\":\"g\",\"value\":{bad}}}"
        );
        let text = format!("{META_EVENTS}\n{line}\n");
        let err = parse_caught(&text).expect_err(&format!("{bad} must be rejected"));
        assert!(err.contains("line 2"), "error must name the line: {err}");
    }
    // The writer's spelling of non-finite — null — stays accepted.
    let ok = format!(
        "{META_EVENTS}\n{{\"type\":\"bus\",\"kind\":\"gauge_set\",\"seq\":0,\"tid\":0,\
         \"t_seconds\":0e0,\"name\":\"g\",\"value\":null}}\n"
    );
    parse_caught(&ok).expect("null gauge value is the non-finite spelling");
}

#[test]
fn torn_final_line_is_a_structured_error() {
    // A crash mid-write leaves the last line truncated at an arbitrary
    // byte. Every prefix cut of a valid line must parse as an error (or, if
    // the cut lands exactly on the newline boundary, succeed) — never panic.
    let full = format!(
        "{META_EVENTS}\n{}\n{}\n",
        progress_line(0, 1, 4),
        progress_line(1, 2, 4)
    );
    let last_line_start = full[..full.len() - 1].rfind('\n').unwrap() + 1;
    for cut in last_line_start..full.len() - 1 {
        let torn = &full[..cut];
        match parse_caught(torn) {
            // Cut at the start of the final line: the stream simply ends a
            // line earlier and stays valid.
            Ok(report) => assert_eq!(report.bus.len(), 1, "cut at {cut}"),
            Err(err) => assert!(err.contains("line 3"), "cut at {cut}: {err}"),
        }
    }
}

#[test]
fn empty_and_meta_less_streams_are_structured_errors() {
    let err = parse_caught("").expect_err("empty stream");
    assert!(err.contains("no meta line"), "{err}");
    let err = parse_caught(&format!("{}\n", progress_line(0, 1, 2))).expect_err("no meta");
    assert!(err.contains("meta"), "{err}");
    let err = parse_caught("\n").expect_err("blank line only");
    assert!(err.contains("blank"), "{err}");
}

#[test]
fn duplicate_ids_are_structured_errors() {
    // Duplicate span paths.
    let span = "{\"type\":\"span\",\"path\":\"p\",\"count\":1,\"total_seconds\":1e-3,\
                \"self_seconds\":1e-3,\"min_seconds\":1e-3,\"max_seconds\":1e-3,\
                \"by_thread\":[[0,1,1e-3]]}";
    let text = format!("{META_METRICS}\n{span}\n{span}\n");
    let err = parse_caught(&text).expect_err("duplicate span");
    assert!(err.contains("duplicate span"), "{err}");

    // Duplicate gauge names.
    let gauge = "{\"type\":\"gauge\",\"name\":\"g\",\"value\":1e0}";
    let text = format!("{META_METRICS}\n{gauge}\n{gauge}\n");
    let err = parse_caught(&text).expect_err("duplicate gauge");
    assert!(err.contains("duplicate gauge"), "{err}");

    // Duplicate meta.
    let text = format!("{META_METRICS}\n{META_METRICS}\n");
    let err = parse_caught(&text).expect_err("duplicate meta");
    assert!(
        err.contains("duplicate meta") || err.contains("first line"),
        "{err}"
    );
}

#[test]
fn bus_lines_are_fenced_to_events_mode_and_schema_3() {
    // Bus line in a metrics-mode report: rejected.
    let text = format!("{META_METRICS}\n{}\n", progress_line(0, 1, 2));
    let err = parse_caught(&text).expect_err("bus outside events mode");
    assert!(err.contains("events"), "{err}");

    // Gauge line on a v2 report: rejected (schema fence).
    let text = "{\"type\":\"meta\",\"schema\":2,\"mode\":\"metrics\",\"dropped_events\":0}\n\
                {\"type\":\"gauge\",\"name\":\"g\",\"value\":1e0}\n";
    let err = parse_caught(text).expect_err("gauge on schema 2");
    assert!(err.contains("schema >= 3"), "{err}");

    // Mode "events" on a v2 report: rejected.
    let text = "{\"type\":\"meta\",\"schema\":2,\"mode\":\"events\",\"dropped_events\":0}\n";
    assert!(parse_caught(text).is_err(), "events mode needs schema 3");

    // An events file carrying aggregate lines: rejected.
    let text = format!("{META_EVENTS}\n{{\"type\":\"counter\",\"name\":\"c\",\"value\":1}}\n");
    let err = parse_caught(&text).expect_err("aggregates in events file");
    assert!(err.contains("aggregate"), "{err}");
}

#[test]
fn malformed_bus_payloads_are_structured_errors() {
    let cases: &[(&str, &str)] = &[
        (
            "{\"type\":\"bus\",\"kind\":\"teleport\",\"seq\":0,\"tid\":0,\"t_seconds\":0e0}",
            "unknown kind",
        ),
        (
            "{\"type\":\"bus\",\"kind\":\"progress\",\"seq\":0,\"tid\":0,\"t_seconds\":0e0,\
             \"sweep\":\"s\",\"done\":9,\"total\":4,\"retried\":0,\"budget_seconds\":null}",
            "done beyond total",
        ),
        (
            "{\"type\":\"bus\",\"kind\":\"progress\",\"seq\":0,\"tid\":0,\"t_seconds\":0e0,\
             \"sweep\":\"s\",\"done\":1}",
            "missing required fields",
        ),
        (
            "{\"type\":\"bus\",\"kind\":\"heartbeat\",\"seq\":0,\"tid\":99999999999,\
             \"t_seconds\":0e0,\"sweep\":\"s\",\"worker\":0,\"tasks_done\":0,\"busy_seconds\":0e0}",
            "tid out of u32 range",
        ),
        (
            "{\"type\":\"bus\",\"kind\":\"failure\",\"seq\":0,\"tid\":0,\"t_seconds\":null,\
             \"sweep\":\"s\",\"index\":0,\"attempts\":1,\"failure\":\"failed\",\"message\":\"m\"}",
            "null timestamp",
        ),
    ];
    for (line, why) in cases {
        let text = format!("{META_EVENTS}\n{line}\n");
        let err = parse_caught(&text).expect_err(&format!("must reject: {why}"));
        assert!(err.contains("line 2"), "{why}: {err}");
    }
}

#[test]
fn a_real_flight_dump_round_trips_through_validate() {
    // Produce a genuine flight-recorder dump via the obs bus and prove the
    // parser accepts it — the exact contract `mss_report validate` relies
    // on for chaos artifacts.
    let bus = mss_obs::events::EventBus::new(true, None);
    bus.publish(mss_obs::events::EventPayload::Progress {
        sweep: "edge".into(),
        done: 1,
        total: 2,
        retried: 0,
        budget_seconds: Some(0.5),
    });
    bus.publish(mss_obs::events::EventPayload::Failure {
        sweep: "edge".into(),
        index: 1,
        attempts: 1,
        kind: "deadline_exceeded".into(),
        message: "sweep deadline hit".into(),
    });
    let path = bus
        .dump_flight("prof_edge_case", "unit test")
        .expect("flight dump");
    let text = std::fs::read_to_string(&path).unwrap();
    let report = parse_caught(&text).expect("flight dump validates");
    assert_eq!(report.meta.mode, "events");
    assert_eq!(report.bus.len(), 2);
    std::fs::remove_file(path).ok();

    // And sanity-check the raw JSON value layer used throughout.
    assert!(Value::parse("{\"a\":1}").is_ok());
    assert!(Value::parse("{\"a\":NaN}").is_err());
}
