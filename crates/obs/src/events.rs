//! The live telemetry event bus and flight recorder of `mss-obs` v2.
//!
//! The [`Registry`](crate::Registry) answers "what happened" *after* a run;
//! this module answers "what is happening" *during* one. A process-wide
//! [`EventBus`] carries typed [`EventPayload`]s — span open/close, counter
//! deltas, gauge sets, sweep progress, per-worker heartbeats, task failures
//! and watchdog regressions — to two bounded destinations:
//!
//! - an **NDJSON event stream** (one JSON object per line, `meta` line
//!   first), appended and flushed per event so `mss_report tail` can render
//!   it live while a sweep runs;
//! - per-thread **flight-recorder rings** holding the last
//!   [`FLIGHT_RING_CAP`] events each, dumped as
//!   `target/flight_<digest>.ndjson` when a supervised sweep ends with
//!   failures (panic, deadline cancellation, `PartialSweep` failures) so a
//!   chaos-smoke crash becomes a diagnosable artifact.
//!
//! # Gating and overhead
//!
//! The bus is opt-in via `MSS_EVENTS=1` (stream to the default
//! [`DEFAULT_EVENTS_PATH`]) or `MSS_EVENTS_PATH=<file>` (stream there;
//! implies enabled), parsed once through [`env_config`](crate::env_config).
//! Disabled, [`publish`] is a single relaxed atomic load — the same
//! permanent-instrumentation contract as the registry.
//!
//! # Determinism
//!
//! Events are observability, not results: sweeps stay bit-identical with the
//! bus on or off (asserted by the telemetry smoke). Event *interleaving*
//! across threads is scheduling-dependent, but the deterministic content —
//! the terminal progress event of a sweep, the set of failure events, final
//! gauge values — is identical at any `MSS_THREADS`, which is what
//! subscriber snapshots are compared on.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::ndjson::{json_num, json_str};
use crate::SCHEMA_VERSION;

/// Events kept per thread in the flight-recorder ring; older events are
/// evicted (and tallied) once a thread's ring is full.
pub const FLIGHT_RING_CAP: usize = 256;

/// Default NDJSON event-stream sink when `MSS_EVENTS=1` is set without an
/// explicit `MSS_EVENTS_PATH`.
pub const DEFAULT_EVENTS_PATH: &str = "target/mss_events.ndjson";

/// One typed telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventPayload {
    /// A hierarchical span opened (global registry spans only).
    SpanOpen {
        /// `/`-joined span path, e.g. `flow/simulate/gemsim.run`.
        path: String,
    },
    /// A hierarchical span closed.
    SpanClose {
        /// `/`-joined span path.
        path: String,
        /// Wall time between open and close.
        duration_seconds: f64,
    },
    /// A counter was bumped.
    CounterDelta {
        /// Counter name.
        name: String,
        /// Amount added.
        delta: u64,
    },
    /// A gauge was set.
    GaugeSet {
        /// Gauge name.
        name: String,
        /// New value (last write wins).
        value: f64,
    },
    /// Supervised-sweep progress (emitted after every task settles).
    Progress {
        /// Sweep label, e.g. `flow.sweep` or `spice.dc_batch`.
        sweep: String,
        /// Tasks settled so far (completed or terminally failed).
        done: u64,
        /// Total tasks in the sweep.
        total: u64,
        /// Retry attempts consumed so far across all tasks.
        retried: u64,
        /// Remaining deadline budget, `None` when the sweep has no deadline.
        budget_seconds: Option<f64>,
    },
    /// A worker is alive and reporting its cumulative work.
    Heartbeat {
        /// Sweep label.
        sweep: String,
        /// Worker thread ordinal (0 = caller, `1 + i` = spawned workers).
        worker: u32,
        /// Tasks this worker has settled.
        tasks_done: u64,
        /// Cumulative busy time on this worker.
        busy_seconds: f64,
    },
    /// A task failed terminally (after retries, if any).
    Failure {
        /// Sweep label.
        sweep: String,
        /// Task index within the sweep.
        index: u64,
        /// Attempts consumed (1 = failed on the first try).
        attempts: u32,
        /// Failure classification tag (`panicked`, `failed`,
        /// `deadline_exceeded`, `cancelled`).
        kind: String,
        /// Human-readable failure message.
        message: String,
    },
    /// The runtime perf watchdog found a span running slower than its
    /// committed baseline.
    Watchdog {
        /// Span path that regressed.
        span: String,
        /// Per-call mean seconds in the committed baseline.
        baseline_seconds: f64,
        /// Per-call mean seconds observed live.
        run_seconds: f64,
        /// `run_seconds / baseline_seconds`.
        ratio: f64,
    },
}

impl EventPayload {
    /// The `kind` string used on the NDJSON `bus` line.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::SpanOpen { .. } => "span_open",
            Self::SpanClose { .. } => "span_close",
            Self::CounterDelta { .. } => "counter_delta",
            Self::GaugeSet { .. } => "gauge_set",
            Self::Progress { .. } => "progress",
            Self::Heartbeat { .. } => "heartbeat",
            Self::Failure { .. } => "failure",
            Self::Watchdog { .. } => "watchdog",
        }
    }
}

/// One event as carried on the bus: payload plus sequencing metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct BusEvent {
    /// Process-wide publish sequence number (monotonic under the bus lock).
    pub seq: u64,
    /// Publishing thread's ordinal (see [`crate::thread_ordinal`]).
    pub tid: u32,
    /// Seconds since the bus was created.
    pub t_seconds: f64,
    /// The typed event.
    pub payload: EventPayload,
}

impl BusEvent {
    /// Renders the event as one schema-v3 NDJSON `bus` line (no trailing
    /// newline).
    pub fn to_json_line(&self) -> String {
        let head = format!(
            "{{\"type\":\"bus\",\"kind\":\"{}\",\"seq\":{},\"tid\":{},\"t_seconds\":{}",
            self.payload.kind(),
            self.seq,
            self.tid,
            json_num(self.t_seconds)
        );
        let tail = match &self.payload {
            EventPayload::SpanOpen { path } => format!("\"path\":{}", json_str(path)),
            EventPayload::SpanClose {
                path,
                duration_seconds,
            } => format!(
                "\"path\":{},\"duration_seconds\":{}",
                json_str(path),
                json_num(*duration_seconds)
            ),
            EventPayload::CounterDelta { name, delta } => {
                format!("\"name\":{},\"delta\":{delta}", json_str(name))
            }
            EventPayload::GaugeSet { name, value } => {
                format!("\"name\":{},\"value\":{}", json_str(name), json_num(*value))
            }
            EventPayload::Progress {
                sweep,
                done,
                total,
                retried,
                budget_seconds,
            } => format!(
                "\"sweep\":{},\"done\":{done},\"total\":{total},\"retried\":{retried},\"budget_seconds\":{}",
                json_str(sweep),
                budget_seconds.map_or_else(|| "null".to_string(), json_num)
            ),
            EventPayload::Heartbeat {
                sweep,
                worker,
                tasks_done,
                busy_seconds,
            } => format!(
                "\"sweep\":{},\"worker\":{worker},\"tasks_done\":{tasks_done},\"busy_seconds\":{}",
                json_str(sweep),
                json_num(*busy_seconds)
            ),
            EventPayload::Failure {
                sweep,
                index,
                attempts,
                kind,
                message,
            } => format!(
                "\"sweep\":{},\"index\":{index},\"attempts\":{attempts},\"failure\":{},\"message\":{}",
                json_str(sweep),
                json_str(kind),
                json_str(message)
            ),
            EventPayload::Watchdog {
                span,
                baseline_seconds,
                run_seconds,
                ratio,
            } => format!(
                "\"span\":{},\"baseline_seconds\":{},\"run_seconds\":{},\"ratio\":{}",
                json_str(span),
                json_num(*baseline_seconds),
                json_num(*run_seconds),
                json_num(*ratio)
            ),
        };
        format!("{head},{tail}}}")
    }
}

/// The event-stream sink, opened lazily on first publish.
#[derive(Debug)]
enum SinkState {
    /// Not yet opened.
    Unopened,
    /// Open and appending.
    Open(std::fs::File),
    /// Open failed; warned once, never retried.
    Failed,
}

#[derive(Debug)]
struct BusInner {
    seq: u64,
    published: u64,
    ring_evictions: u64,
    rings: BTreeMap<u32, VecDeque<BusEvent>>,
    sink: SinkState,
}

/// The bounded, lock-protected telemetry bus. One global instance backs the
/// free functions; tests construct their own for env-independent behaviour.
#[derive(Debug)]
pub struct EventBus {
    enabled: AtomicBool,
    epoch: Instant,
    sink_path: Option<PathBuf>,
    inner: Mutex<BusInner>,
}

impl EventBus {
    /// Creates a bus; `sink_path` is the NDJSON stream destination (`None`
    /// keeps events in the flight rings only).
    pub fn new(enabled: bool, sink_path: Option<PathBuf>) -> Self {
        Self {
            enabled: AtomicBool::new(enabled),
            epoch: Instant::now(),
            sink_path,
            inner: Mutex::new(BusInner {
                seq: 0,
                published: 0,
                ring_evictions: 0,
                rings: BTreeMap::new(),
                sink: SinkState::Unopened,
            }),
        }
    }

    /// Creates a bus from the cached [`env_config`](crate::env_config):
    /// enabled by `MSS_EVENTS` / `MSS_EVENTS_PATH`, streaming to the
    /// configured path (default [`DEFAULT_EVENTS_PATH`]).
    pub fn from_env() -> Self {
        let env = crate::env_config();
        let sink_path = env.events.then(|| {
            PathBuf::from(
                env.events_path
                    .clone()
                    .unwrap_or_else(|| DEFAULT_EVENTS_PATH.to_string()),
            )
        });
        Self::new(env.events, sink_path)
    }

    /// True when the bus records anything (one relaxed atomic load).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Publishes one event: appends it to the NDJSON stream (flushing so
    /// `mss_report tail` sees it immediately) and to the publishing thread's
    /// flight ring. No-op when disabled.
    pub fn publish(&self, payload: EventPayload) {
        if !self.enabled() {
            return;
        }
        let tid = crate::thread_ordinal();
        let t_seconds = self.epoch.elapsed().as_secs_f64();
        let mut inner = self.inner.lock().expect("event bus poisoned");
        let seq = inner.seq;
        inner.seq += 1;
        inner.published += 1;
        let event = BusEvent {
            seq,
            tid,
            t_seconds,
            payload,
        };
        if let Some(path) = &self.sink_path {
            write_sink_line(&mut inner.sink, path, &event);
        }
        let ring = inner.rings.entry(tid).or_default();
        let evicted = ring.len() >= FLIGHT_RING_CAP;
        if evicted {
            ring.pop_front();
        }
        ring.push_back(event);
        if evicted {
            inner.ring_evictions += 1;
        }
    }

    /// Total events published since the bus was created.
    pub fn published(&self) -> u64 {
        self.inner.lock().expect("event bus poisoned").published
    }

    /// Events evicted from flight rings (ring capacity, not stream loss —
    /// the NDJSON stream receives every published event).
    pub fn ring_evictions(&self) -> u64 {
        self.inner
            .lock()
            .expect("event bus poisoned")
            .ring_evictions
    }

    /// The event-stream sink path, if streaming is configured.
    pub fn sink_path(&self) -> Option<&Path> {
        self.sink_path.as_deref()
    }

    /// Snapshot of every event still held in the flight rings, ordered by
    /// publish sequence. Content (not interleaving) is deterministic: for a
    /// fixed seed the terminal progress/failure/gauge events are identical
    /// at any `MSS_THREADS`.
    pub fn snapshot(&self) -> Vec<BusEvent> {
        let inner = self.inner.lock().expect("event bus poisoned");
        let mut all: Vec<BusEvent> = inner
            .rings
            .values()
            .flat_map(|ring| ring.iter().cloned())
            .collect();
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Dumps the flight rings as `target/flight_<digest>.ndjson` (meta line
    /// first, then `bus` lines in publish order) and returns the path.
    ///
    /// `digest` identifies the failed sweep (non-filename characters are
    /// replaced with `_`); `reason` is recorded on the meta line. The file
    /// is written via temp-file + rename so a crash mid-dump never leaves a
    /// torn artifact, and it parses under `mss_report validate`.
    pub fn dump_flight(&self, digest: &str, reason: &str) -> std::io::Result<PathBuf> {
        let sanitized: String = digest
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = PathBuf::from(format!("target/flight_{sanitized}.ndjson"));
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let events = self.snapshot();
        let evictions = self.ring_evictions();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"schema\":{SCHEMA_VERSION},\"mode\":\"events\",\"dropped_events\":{evictions},\"reason\":{}}}\n",
            json_str(reason)
        ));
        for event in &events {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        let tmp = path.with_extension("ndjson.tmp");
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// Appends one event line to the stream sink, opening (with a meta first
/// line) on first use; an unopenable sink warns once and degrades to
/// ring-only operation rather than failing the run.
fn write_sink_line(sink: &mut SinkState, path: &Path, event: &BusEvent) {
    if matches!(sink, SinkState::Unopened) {
        *sink = match open_sink(path) {
            Ok(file) => SinkState::Open(file),
            Err(err) => {
                eprintln!(
                    "warning: cannot open event stream {}: {err}; \
                     events kept in flight rings only",
                    path.display()
                );
                SinkState::Failed
            }
        };
    }
    if let SinkState::Open(file) = sink {
        let mut line = event.to_json_line();
        line.push('\n');
        if file.write_all(line.as_bytes()).is_err() {
            *sink = SinkState::Failed;
        }
    }
}

fn open_sink(path: &Path) -> std::io::Result<std::fs::File> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(
        format!("{{\"type\":\"meta\",\"schema\":{SCHEMA_VERSION},\"mode\":\"events\",\"dropped_events\":0}}\n")
            .as_bytes(),
    )?;
    Ok(file)
}

// ---------------------------------------------------------------------------
// Global bus
// ---------------------------------------------------------------------------

static BUS: OnceLock<EventBus> = OnceLock::new();

/// Initialises the global bus explicitly, overriding the environment.
/// Returns `false` (and changes nothing) when the bus was already
/// initialised — call it first thing in `main` or a test binary.
pub fn init_bus_with(enabled: bool, sink_path: Option<PathBuf>) -> bool {
    let mut fresh = false;
    BUS.get_or_init(|| {
        fresh = true;
        EventBus::new(enabled, sink_path)
    });
    fresh
}

/// The process-wide bus, lazily initialised from the environment.
pub fn bus() -> &'static EventBus {
    BUS.get_or_init(EventBus::from_env)
}

/// True when the global bus records anything (one atomic load; gate event
/// construction on this in hot paths).
#[inline]
pub fn bus_enabled() -> bool {
    bus().enabled()
}

/// Publishes one event on the global bus (no-op when disabled).
#[inline]
pub fn publish(payload: EventPayload) {
    bus().publish(payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn progress(sweep: &str, done: u64) -> EventPayload {
        EventPayload::Progress {
            sweep: sweep.to_string(),
            done,
            total: 8,
            retried: 0,
            budget_seconds: None,
        }
    }

    #[test]
    fn disabled_bus_records_nothing() {
        let bus = EventBus::new(false, None);
        bus.publish(progress("s", 1));
        assert_eq!(bus.published(), 0);
        assert!(bus.snapshot().is_empty());
    }

    #[test]
    fn events_carry_sequence_and_thread() {
        let bus = EventBus::new(true, None);
        bus.publish(progress("s", 1));
        bus.publish(EventPayload::GaugeSet {
            name: "g".into(),
            value: 2.5,
        });
        let snap = bus.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[1].seq, 1);
        assert!(snap[1].t_seconds >= snap[0].t_seconds);
        assert_eq!(bus.published(), 2);
    }

    #[test]
    fn flight_ring_is_bounded_per_thread() {
        let bus = EventBus::new(true, None);
        for i in 0..(FLIGHT_RING_CAP as u64 + 17) {
            bus.publish(progress("s", i));
        }
        let snap = bus.snapshot();
        assert_eq!(snap.len(), FLIGHT_RING_CAP);
        assert_eq!(bus.ring_evictions(), 17);
        // The ring keeps the *last* N events.
        assert_eq!(snap.first().unwrap().seq, 17);
        assert_eq!(snap.last().unwrap().seq, FLIGHT_RING_CAP as u64 + 16);
    }

    #[test]
    fn every_payload_kind_renders_valid_json() {
        let payloads = vec![
            EventPayload::SpanOpen { path: "a/b".into() },
            EventPayload::SpanClose {
                path: "a/b".into(),
                duration_seconds: 1e-3,
            },
            EventPayload::CounterDelta {
                name: "c \"x\"".into(),
                delta: 3,
            },
            EventPayload::GaugeSet {
                name: "g".into(),
                value: f64::NAN,
            },
            EventPayload::Progress {
                sweep: "sw".into(),
                done: 3,
                total: 9,
                retried: 1,
                budget_seconds: Some(0.25),
            },
            EventPayload::Heartbeat {
                sweep: "sw".into(),
                worker: 2,
                tasks_done: 4,
                busy_seconds: 0.5,
            },
            EventPayload::Failure {
                sweep: "sw".into(),
                index: 7,
                attempts: 2,
                kind: "panicked".into(),
                message: "boom\nline".into(),
            },
            EventPayload::Watchdog {
                span: "flow/simulate".into(),
                baseline_seconds: 1e-2,
                run_seconds: 3e-2,
                ratio: 3.0,
            },
        ];
        for payload in payloads {
            let line = BusEvent {
                seq: 1,
                tid: 0,
                t_seconds: 0.5,
                payload,
            }
            .to_json_line();
            assert!(line.starts_with("{\"type\":\"bus\",\"kind\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'), "{line}");
            // NaN gauge must degrade to null, never a bare NaN token.
            assert!(!line.contains("NaN"), "{line}");
        }
    }

    #[test]
    fn snapshot_merges_rings_in_sequence_order() {
        let bus = EventBus::new(true, None);
        std::thread::scope(|scope| {
            for w in 0..4u32 {
                let bus = &bus;
                scope.spawn(move || {
                    crate::set_thread_ordinal(100 + w);
                    for i in 0..10 {
                        bus.publish(progress("par", i));
                    }
                });
            }
        });
        let snap = bus.snapshot();
        assert_eq!(snap.len(), 40);
        for pair in snap.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "snapshot must be seq-ordered");
        }
    }

    #[test]
    fn flight_dump_sanitizes_digest_and_roundtrips() {
        let bus = EventBus::new(true, None);
        bus.publish(progress("s", 1));
        bus.publish(EventPayload::Failure {
            sweep: "s".into(),
            index: 1,
            attempts: 1,
            kind: "panicked".into(),
            message: "induced".into(),
        });
        let path = bus
            .dump_flight("unit/te:st dump", "unit test")
            .expect("dump");
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "flight_unit_te_st_dump.ndjson"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        let meta = lines.next().unwrap();
        assert!(meta.contains("\"mode\":\"events\""), "{meta}");
        assert!(meta.contains("\"reason\":\"unit test\""), "{meta}");
        assert_eq!(lines.count(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn stream_sink_writes_meta_then_events() {
        let dir = std::env::temp_dir().join(format!("mss_obs_sink_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sink = dir.join("events.ndjson");
        let bus = EventBus::new(true, Some(sink.clone()));
        bus.publish(progress("s", 1));
        bus.publish(progress("s", 2));
        let text = std::fs::read_to_string(&sink).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"type\":\"meta\""), "{text}");
        assert!(lines[1].contains("\"kind\":\"progress\""), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
