//! `mss-obs` — the zero-dependency observability layer of the GREAT MSS flow.
//!
//! Every layer of the device→PDK→memory→system flow (LLG sweeps, MNA solves,
//! Monte Carlo batches, cache simulation, flow phases) reports into one
//! process-wide [`Registry`] of
//!
//! - **counters** — monotonically increasing named `u64`s,
//! - **histograms** — fixed-bucket (half-decade log₁₀) value distributions,
//! - **spans** — hierarchical RAII timers aggregated by path
//!   (`parent/child`), with optional per-event tracing,
//! - **run records** — `mss-exec` `RunStats`-shaped entries (tasks, samples,
//!   wall time, per-thread utilization) folded into counters + histograms.
//!
//! The registry emits a machine-readable **NDJSON run report** (one JSON
//! object per line, see [`Registry::to_ndjson`]) that CI archives per run, so
//! performance work has a measured baseline instead of a guess.
//!
//! # Gating and overhead
//!
//! The global registry is gated by environment variables, parsed once per
//! process (see [`env_config`]):
//!
//! - `MSS_METRICS=1` — counters, gauges, histograms and span aggregates are
//!   live;
//! - `MSS_TRACE=1` — additionally records individual span events (bounded
//!   buffer) and implies `MSS_METRICS`;
//! - `MSS_EVENTS=1` / `MSS_EVENTS_PATH=<file>` — enables the live
//!   [event bus](events) (typed progress/heartbeat/failure/gauge events,
//!   per-thread flight-recorder rings, NDJSON event stream).
//!
//! With none set the global API is a no-op behind a single relaxed atomic
//! load — instrumentation can stay in hot paths permanently. The disabled
//! cost is asserted by this crate's overhead smoke test.
//!
//! # Examples
//!
//! ```
//! use mss_obs::{Mode, Registry};
//!
//! let reg = Registry::new(Mode::Metrics);
//! {
//!     let _outer = reg.span("flow");
//!     let _inner = reg.span("characterize");
//!     reg.counter_add("cells.characterized", 42);
//! }
//! assert_eq!(reg.counter("cells.characterized"), 42);
//! let report = reg.to_ndjson();
//! assert!(report.lines().any(|l| l.contains("flow/characterize")));
//! ```

#![deny(missing_docs)]

pub mod events;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Environment variable enabling metrics (counters/histograms/spans).
pub const METRICS_ENV: &str = "MSS_METRICS";
/// Environment variable enabling per-event span tracing (implies metrics).
pub const TRACE_ENV: &str = "MSS_TRACE";
/// Environment variable enabling the live [event bus](events).
pub const EVENTS_ENV: &str = "MSS_EVENTS";
/// Environment variable overriding the event-stream sink path (setting it
/// implies [`EVENTS_ENV`]).
pub const EVENTS_PATH_ENV: &str = "MSS_EVENTS_PATH";

/// Cap on buffered trace events; recording stops (and a drop counter runs)
/// once the buffer is full, bounding memory for long runs.
pub const TRACE_EVENT_CAP: usize = 8192;

/// Number of histogram buckets (half-decade log₁₀ spacing).
pub const HIST_BUCKETS: usize = 64;

/// NDJSON schema version emitted in the `meta` line.
///
/// Version 2 (the profiling schema) extends v1 with:
/// - `meta.dropped_events` — trace-buffer overflow count, surfaced so a
///   truncated timeline is never mistaken for a complete one,
/// - `histogram.mean`/`p50`/`p90`/`p99` — bucket-derived quantile estimates,
/// - `span.self_seconds` — time inside the span excluding child spans,
/// - `span.by_thread` — `[tid, count, total_seconds]` ownership slices,
/// - `event.tid` — the recording thread's ordinal (see
///   [`set_thread_ordinal`]).
///
/// Version 3 (the telemetry schema) extends v2 with:
/// - `gauge` lines — last-write-wins named values
///   (`{"type":"gauge","name":...,"value":...}`),
/// - `bus` lines — typed live events from the [event bus](events)
///   (`{"type":"bus","kind":"progress",...}`; see [`events::EventPayload`]),
/// - meta mode `"events"` — marks a pure event-stream file (live stream or
///   flight-recorder dump) rather than an aggregate run report.
pub const SCHEMA_VERSION: u32 = 3;

/// Counter bumped when `MSS_METRICS`/`MSS_TRACE` hold a garbled value (the
/// value is warned about once on stderr and otherwise ignored).
pub const BAD_ENV_COUNTER: &str = "obs.bad_env";

/// Counter holding the number of trace events dropped on buffer overflow;
/// also surfaced as `dropped_events` in the NDJSON `meta` line.
pub const DROPPED_EVENTS_COUNTER: &str = "obs.trace.dropped_events";

/// What the registry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mode {
    /// Record nothing; every call is a near-free early return.
    Off,
    /// Record counters, histograms and span aggregates.
    Metrics,
    /// [`Mode::Metrics`] plus individual span events (bounded buffer).
    Trace,
}

impl Mode {
    /// Reads the mode from `MSS_TRACE` / `MSS_METRICS` via the process-wide
    /// cached [`env_config`] (parsed once, warned about once).
    ///
    /// Accepted spellings (after trimming, case-insensitive): `1`/`true`/`on`
    /// enable, and unset/empty/`0`/`false`/`off` disable. Anything else
    /// (`yes`, `enable`, a stray path, …) is **not** silently treated as set:
    /// it warns once on stderr and counts as unset, following the
    /// `MSS_THREADS` / `MSS_CACHE` warn-once convention, and is tallied for
    /// the [`BAD_ENV_COUNTER`] (seeded into registries built via
    /// [`Registry::from_env`]).
    pub fn from_env() -> Self {
        env_config().mode
    }
}

/// The observability environment, parsed once per process.
///
/// Every consumer of `MSS_METRICS` / `MSS_TRACE` / `MSS_EVENTS` /
/// `MSS_EVENTS_PATH` goes through this single cached snapshot, so garbled
/// values warn exactly once no matter how many registries, buses or call
/// sites consult the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvConfig {
    /// Recording mode from `MSS_TRACE` / `MSS_METRICS`.
    pub mode: Mode,
    /// Whether the live event bus is enabled (`MSS_EVENTS`, or implied by a
    /// non-empty `MSS_EVENTS_PATH`).
    pub events: bool,
    /// Event-stream sink path override from `MSS_EVENTS_PATH` (`None` means
    /// the default `target/mss_events.ndjson` when the bus is enabled).
    pub events_path: Option<String>,
    /// Number of garbled variables encountered (each already warned about).
    pub bad_env: u64,
}

impl EnvConfig {
    /// Parses the observability environment from a variable lookup, returning
    /// the config plus the warning for each garbled variable (exactly one per
    /// variable). Pure — the cached entry point [`env_config`] feeds it
    /// `std::env::var` and prints the warnings once.
    pub fn parse_from(get: impl Fn(&str) -> Option<String>) -> (Self, Vec<String>) {
        let mut warnings = Vec::new();
        let mut bad = 0u64;
        let mut flag = |key: &str| match get(key) {
            None => false,
            Some(raw) => match parse_flag(&raw) {
                Ok(set) => set,
                Err(why) => {
                    bad += 1;
                    warnings.push(format!(
                        "warning: ignoring {key}={raw:?} ({why}); \
                         expected 1/true/on or 0/false/off"
                    ));
                    false
                }
            },
        };
        let mode = if flag(TRACE_ENV) {
            Mode::Trace
        } else if flag(METRICS_ENV) {
            Mode::Metrics
        } else {
            Mode::Off
        };
        let events_flag = flag(EVENTS_ENV);
        let events_path = get(EVENTS_PATH_ENV).filter(|p| !p.trim().is_empty());
        let config = Self {
            mode,
            events: events_flag || events_path.is_some(),
            events_path,
            bad_env: bad,
        };
        (config, warnings)
    }
}

/// The cached process-wide [`EnvConfig`]: parsed (and warned about) exactly
/// once, on first use.
pub fn env_config() -> &'static EnvConfig {
    static CONFIG: OnceLock<EnvConfig> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let (config, warnings) = EnvConfig::parse_from(|key| std::env::var(key).ok());
        for w in &warnings {
            eprintln!("{w}");
        }
        config
    })
}

/// Parses an `MSS_METRICS`-style boolean flag; see [`Mode::from_env`] for
/// the accepted spellings.
fn parse_flag(raw: &str) -> Result<bool, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "0" | "false" | "off" => Ok(false),
        "1" | "true" | "on" => Ok(true),
        other => Err(format!("unrecognised value {other:?}")),
    }
}

/// Fixed-bucket histogram: half-decade log₁₀ buckets spanning `1e-18 ..
/// 1e14`, plus running count / sum / min / max.
///
/// Bucket `i` holds values in `[10^((i-36)/2), 10^((i-35)/2))`; values at or
/// below zero land in bucket 0, values beyond the range clamp to the edge
/// buckets. Consumers normally use the moments and treat buckets as shape.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for a value.
    fn bucket_of(v: f64) -> usize {
        if v <= 0.0 || !v.is_finite() {
            return 0;
        }
        let idx = (v.log10() * 2.0 + 36.0).floor();
        idx.clamp(0.0, (HIST_BUCKETS - 1) as f64) as usize
    }

    /// Records one observation (non-finite values count into bucket 0 and
    /// are excluded from the moments so a stray NaN cannot poison the sums).
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.buckets[Self::bucket_of(v)] += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of the finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the finite observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest finite observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.min <= self.max).then_some(self.min)
    }

    /// Largest finite observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.min <= self.max).then_some(self.max)
    }

    /// Bucket-derived quantile estimate (`q` clamped to `[0, 1]`), `None`
    /// when the histogram is empty.
    ///
    /// Walks the cumulative bucket counts to the bucket containing the
    /// `ceil(q·count)`-th observation and returns its geometric midpoint,
    /// clamped to the observed `[min, max]` so single-sample histograms and
    /// edge buckets report the recorded value rather than a bucket-shaped
    /// fiction. Bucket 0 (values ≤ 0, non-finite, or below `1e-18`) has no
    /// meaningful midpoint; it reports the observed minimum, or `0` when no
    /// finite value was ever recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let estimate = if i == 0 {
                    self.min().unwrap_or(0.0)
                } else {
                    10f64.powf((i as f64 - 35.5) / 2.0)
                };
                return Some(match (self.min(), self.max()) {
                    (Some(lo), Some(hi)) => estimate.clamp(lo, hi),
                    _ => estimate,
                });
            }
        }
        unreachable!("bucket counts always sum to self.count")
    }
}

/// Aggregate of one span path.
#[derive(Debug, Clone, Default)]
struct SpanAgg {
    count: u64,
    total_seconds: f64,
    /// Total time minus time spent in child spans (attribution: where the
    /// clock actually burned, not just what was on the stack).
    self_seconds: f64,
    min_seconds: f64,
    max_seconds: f64,
    /// Ownership slices keyed by thread ordinal: which worker closed this
    /// span, how often, and for how long.
    by_thread: BTreeMap<u32, ThreadSlice>,
}

/// Per-thread share of one span path.
#[derive(Debug, Clone, Copy, Default)]
struct ThreadSlice {
    count: u64,
    total_seconds: f64,
}

/// One recorded span event (trace mode only).
#[derive(Debug, Clone)]
struct TraceEvent {
    path: String,
    tid: u32,
    start_seconds: f64,
    duration_seconds: f64,
}

/// One open span on a thread's stack: its name plus the time already
/// attributed to completed child spans (used for self-time on close).
#[derive(Debug)]
struct Frame {
    name: &'static str,
    child_seconds: f64,
}

thread_local! {
    /// Active span frames on this thread, innermost last. Shared by every
    /// registry; span paths therefore reflect per-thread nesting.
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };

    /// This thread's ordinal for timeline attribution (lazily assigned, or
    /// pinned by [`set_thread_ordinal`]).
    static THREAD_ORDINAL: std::cell::Cell<Option<u32>> = const { std::cell::Cell::new(None) };
}

/// Next lazily-assigned thread ordinal. The first recording thread —
/// normally the main thread — gets 0; `mss-exec` workers pin `1 + worker`
/// via [`set_thread_ordinal`] before pulling tasks.
static NEXT_ORDINAL: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

/// Pins the calling thread's ordinal for span ownership and trace-event
/// timelines. `mss-exec` calls this with `1 + worker_index` in every spawned
/// worker so profiles and Chrome traces name workers stably across parallel
/// regions; threads that never pin one get the next free ordinal on first
/// use.
pub fn set_thread_ordinal(ordinal: u32) {
    THREAD_ORDINAL.with(|cell| cell.set(Some(ordinal)));
}

/// The calling thread's ordinal, assigning one if needed.
pub fn thread_ordinal() -> u32 {
    THREAD_ORDINAL.with(|cell| match cell.get() {
        Some(id) => id,
        None => {
            let id = NEXT_ORDINAL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            cell.set(Some(id));
            id
        }
    })
}

/// A named-metric registry. One global instance backs the free functions;
/// tests construct their own for deterministic, env-independent behaviour.
#[derive(Debug)]
pub struct Registry {
    mode: Mode,
    epoch: Instant,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanAgg>>,
    events: Mutex<Vec<TraceEvent>>,
}

impl Registry {
    /// Creates a registry in the given mode.
    pub fn new(mode: Mode) -> Self {
        Self {
            mode,
            epoch: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Creates a registry with the mode from the cached [`env_config`];
    /// garbled `MSS_METRICS`/`MSS_TRACE`/`MSS_EVENTS` values are warned about
    /// once (at env parse) and seed the [`BAD_ENV_COUNTER`] so a
    /// misconfigured run stays diagnosable from its own report.
    pub fn from_env() -> Self {
        let env = env_config();
        let reg = Self::new(env.mode);
        if env.bad_env > 0 {
            reg.counter_add(BAD_ENV_COUNTER, env.bad_env);
        }
        reg
    }

    /// The recording mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// True when anything at all is recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode != Mode::Off
    }

    /// Adds `n` to the named counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        if !self.enabled() {
            return;
        }
        let mut counters = self.counters.lock().expect("obs counters poisoned");
        *counters.entry_or_insert(name) += n;
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("obs counters poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sets the named gauge to `v` (last write wins).
    ///
    /// Gauges are point-in-time levels — cache occupancy, hit ratio,
    /// extrapolated access counts — where only the latest value matters,
    /// unlike monotonically accumulating counters.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if !self.enabled() {
            return;
        }
        let mut gauges = self.gauges.lock().expect("obs gauges poisoned");
        *gauges.entry_or_insert(name) = v;
    }

    /// Current value of a gauge, `None` when never set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .lock()
            .expect("obs gauges poisoned")
            .get(name)
            .copied()
    }

    /// Records a value into the named histogram.
    pub fn record_value(&self, name: &str, v: f64) {
        if !self.enabled() {
            return;
        }
        let mut hists = self.histograms.lock().expect("obs histograms poisoned");
        hists.entry_or_insert(name).record(v);
    }

    /// Snapshot of a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms
            .lock()
            .expect("obs histograms poisoned")
            .get(name)
            .cloned()
    }

    /// Opens a hierarchical timed span; the returned guard records on drop.
    ///
    /// The span's path is the `/`-joined chain of spans currently open on
    /// this thread (`flow/simulate/gemsim.run`). Disabled registries return
    /// an inert guard without touching the clock.
    #[must_use = "the span measures until the guard is dropped"]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard {
                registry: None,
                path: String::new(),
                start: None,
                publish: false,
            };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(Frame {
                name,
                child_seconds: 0.0,
            });
            stack.iter().map(|f| f.name).collect::<Vec<_>>().join("/")
        });
        SpanGuard {
            registry: Some(self),
            path,
            start: Some(Instant::now()),
            publish: false,
        }
    }

    /// Folds one parallel-region run record (the shape of `mss-exec`'s
    /// `RunStats`) into counters and histograms under `name`:
    ///
    /// - `{name}.tasks`, `{name}.samples` counters,
    /// - `{name}.wall_seconds` histogram of the region wall time,
    /// - `{name}.utilization` histogram of mean busy/wall across workers.
    ///
    /// Takes primitives rather than the struct so `mss-exec` can depend on
    /// this crate without a cycle.
    pub fn record_run(
        &self,
        name: &str,
        tasks: u64,
        samples: u64,
        wall_seconds: f64,
        busy_seconds: &[f64],
    ) {
        if !self.enabled() {
            return;
        }
        self.counter_add(&format!("{name}.tasks"), tasks);
        self.counter_add(&format!("{name}.samples"), samples);
        self.record_value(&format!("{name}.wall_seconds"), wall_seconds);
        if wall_seconds > 0.0 && !busy_seconds.is_empty() {
            let mean_busy = busy_seconds.iter().sum::<f64>() / busy_seconds.len() as f64;
            self.record_value(&format!("{name}.utilization"), mean_busy / wall_seconds);
        }
    }

    fn close_span(&self, path: &str, duration: f64) {
        // Pop this span's frame and charge its duration to the parent's
        // child time; the difference between the popped frame's child time
        // and the duration is this span's self time.
        let child_seconds = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let child = stack.pop().map_or(0.0, |f| f.child_seconds);
            if let Some(parent) = stack.last_mut() {
                parent.child_seconds += duration;
            }
            child
        });
        let self_seconds = (duration - child_seconds).max(0.0);
        let tid = thread_ordinal();
        {
            let mut spans = self.spans.lock().expect("obs spans poisoned");
            let agg = spans.entry_or_insert(path);
            if agg.count == 0 {
                agg.min_seconds = duration;
                agg.max_seconds = duration;
            } else {
                agg.min_seconds = agg.min_seconds.min(duration);
                agg.max_seconds = agg.max_seconds.max(duration);
            }
            agg.count += 1;
            agg.total_seconds += duration;
            agg.self_seconds += self_seconds;
            let slice = agg.by_thread.entry(tid).or_default();
            slice.count += 1;
            slice.total_seconds += duration;
        }
        if self.mode == Mode::Trace {
            let start = self.epoch.elapsed().as_secs_f64() - duration;
            let mut events = self.events.lock().expect("obs events poisoned");
            if events.len() < TRACE_EVENT_CAP {
                events.push(TraceEvent {
                    path: path.to_string(),
                    tid,
                    start_seconds: start.max(0.0),
                    duration_seconds: duration,
                });
            } else {
                drop(events);
                self.counter_add(DROPPED_EVENTS_COUNTER, 1);
            }
        }
    }

    /// Renders the whole registry as NDJSON — one self-describing JSON
    /// object per line, deterministically ordered (`meta`, then counters,
    /// gauges, histograms, spans and events, each alphabetical):
    ///
    /// ```text
    /// {"type":"meta","schema":3,"mode":"metrics","dropped_events":0}
    /// {"type":"counter","name":"vaet.mc.samples","value":20000}
    /// {"type":"gauge","name":"pipe.mem.occupancy","value":1.2e1}
    /// {"type":"histogram","name":"vaet.mc.wall_seconds","count":2,...,"p50":...,"p90":...,"p99":...}
    /// {"type":"span","path":"mc_smoke/vaet.mc.run","count":2,...,"self_seconds":...,"by_thread":[[0,2,1.5e-3]]}
    /// {"type":"event","path":"...","tid":0,"start_seconds":...,"duration_seconds":...}
    /// ```
    ///
    /// See [`SCHEMA_VERSION`] for the v1→v2→v3 field additions; `mss-prof`
    /// parses, validates, diffs and exports this format.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        let mode = match self.mode {
            Mode::Off => "off",
            Mode::Metrics => "metrics",
            Mode::Trace => "trace",
        };
        let dropped = self.counter(DROPPED_EVENTS_COUNTER);
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"schema\":{SCHEMA_VERSION},\"mode\":\"{mode}\",\"dropped_events\":{dropped}}}\n"
        ));
        for (name, value) in self.counters.lock().expect("obs counters poisoned").iter() {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":{},\"value\":{value}}}\n",
                json_str(name)
            ));
        }
        for (name, value) in self.gauges.lock().expect("obs gauges poisoned").iter() {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}\n",
                json_str(name),
                json_num(*value)
            ));
        }
        for (name, h) in self
            .histograms
            .lock()
            .expect("obs histograms poisoned")
            .iter()
        {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| format!("[{i},{c}]"))
                .collect();
            let quantile = |q: f64| json_num(h.quantile(q).unwrap_or(f64::NAN));
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}\n",
                json_str(name),
                h.count,
                json_num(h.sum),
                json_num(if h.count == 0 { 0.0 } else { h.min }),
                json_num(if h.count == 0 { 0.0 } else { h.max }),
                json_num(h.mean()),
                quantile(0.50),
                quantile(0.90),
                quantile(0.99),
                buckets.join(",")
            ));
        }
        for (path, s) in self.spans.lock().expect("obs spans poisoned").iter() {
            let by_thread: Vec<String> = s
                .by_thread
                .iter()
                .map(|(tid, t)| format!("[{tid},{},{}]", t.count, json_num(t.total_seconds)))
                .collect();
            out.push_str(&format!(
                "{{\"type\":\"span\",\"path\":{},\"count\":{},\"total_seconds\":{},\"self_seconds\":{},\"min_seconds\":{},\"max_seconds\":{},\"by_thread\":[{}]}}\n",
                json_str(path),
                s.count,
                json_num(s.total_seconds),
                json_num(s.self_seconds),
                json_num(s.min_seconds),
                json_num(s.max_seconds),
                by_thread.join(",")
            ));
        }
        for e in self.events.lock().expect("obs events poisoned").iter() {
            out.push_str(&format!(
                "{{\"type\":\"event\",\"path\":{},\"tid\":{},\"start_seconds\":{},\"duration_seconds\":{}}}\n",
                json_str(&e.path),
                e.tid,
                json_num(e.start_seconds),
                json_num(e.duration_seconds)
            ));
        }
        out
    }
}

/// `BTreeMap::entry(..).or_insert_with(..)` without allocating the key when
/// it already exists — counters/histograms are hit repeatedly with the same
/// names.
trait EntryOrInsert<V: Default> {
    fn entry_or_insert(&mut self, name: &str) -> &mut V;
}

impl<V: Default> EntryOrInsert<V> for BTreeMap<String, V> {
    fn entry_or_insert(&mut self, name: &str) -> &mut V {
        if !self.contains_key(name) {
            self.insert(name.to_string(), V::default());
        }
        self.get_mut(name).expect("just inserted")
    }
}

/// RAII guard of one open span; records into the registry on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    registry: Option<&'a Registry>,
    path: String,
    start: Option<Instant>,
    /// Publish open/close events to the global [event bus](events) — set
    /// only by the global [`span`] free function when the bus is live.
    publish: bool,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let (Some(registry), Some(start)) = (self.registry, self.start) {
            let duration = start.elapsed().as_secs_f64();
            registry.close_span(&self.path, duration);
            if self.publish {
                events::publish(events::EventPayload::SpanClose {
                    path: std::mem::take(&mut self.path),
                    duration_seconds: duration,
                });
            }
        }
    }
}

/// The hand-rolled NDJSON emitter primitives shared by every report writer
/// in the workspace (run reports here, on-disk cache entries in `mss-pipe`).
pub mod ndjson {
    /// Escapes a string as a JSON string literal (with quotes).
    pub fn json_str(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Formats an `f64` as a JSON number (`null` for non-finite values,
    /// which JSON cannot represent).
    pub fn json_num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:e}")
        } else {
            "null".to_string()
        }
    }
}

use ndjson::{json_num, json_str};

// ---------------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Initialises the global registry with an explicit mode, overriding the
/// environment. Returns `false` (and changes nothing) when the global
/// registry was already initialised — call it first thing in `main` or a
/// test binary.
pub fn init_with_mode(mode: Mode) -> bool {
    let mut fresh = false;
    GLOBAL.get_or_init(|| {
        fresh = true;
        Registry::new(mode)
    });
    fresh
}

/// The process-wide registry, lazily initialised from the environment.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::from_env)
}

/// True when the global registry records anything (one atomic load + flag
/// check; instrument hot paths freely).
#[inline]
pub fn enabled() -> bool {
    global().enabled()
}

/// Adds `n` to a global counter; mirrored onto the live
/// [event bus](events) as a `counter_delta` event when the bus is enabled.
#[inline]
pub fn counter_add(name: &str, n: u64) {
    global().counter_add(name, n);
    if events::bus_enabled() {
        events::publish(events::EventPayload::CounterDelta {
            name: name.to_string(),
            delta: n,
        });
    }
}

/// Current value of a global counter (0 when never touched).
#[inline]
pub fn counter(name: &str) -> u64 {
    global().counter(name)
}

/// Sets a global gauge (last write wins); mirrored onto the live
/// [event bus](events) as a `gauge_set` event when the bus is enabled.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    global().gauge_set(name, v);
    if events::bus_enabled() {
        events::publish(events::EventPayload::GaugeSet {
            name: name.to_string(),
            value: v,
        });
    }
}

/// Current value of a global gauge, `None` when never set.
#[inline]
pub fn gauge(name: &str) -> Option<f64> {
    global().gauge(name)
}

/// Records a value into a global histogram.
#[inline]
pub fn record_value(name: &str, v: f64) {
    global().record_value(name, v);
}

/// Opens a span on the global registry (see [`Registry::span`]); open/close
/// are mirrored onto the live [event bus](events) when it is enabled (and
/// the registry itself records, so the span has a path).
#[must_use = "the span measures until the guard is dropped"]
pub fn span(name: &'static str) -> SpanGuard<'static> {
    let mut guard = global().span(name);
    if guard.start.is_some() && events::bus_enabled() {
        guard.publish = true;
        events::publish(events::EventPayload::SpanOpen {
            path: guard.path.clone(),
        });
    }
    guard
}

/// Records a parallel-region run on the global registry (see
/// [`Registry::record_run`]).
pub fn record_run(name: &str, tasks: u64, samples: u64, wall_seconds: f64, busy_seconds: &[f64]) {
    global().record_run(name, tasks, samples, wall_seconds, busy_seconds);
}

/// Renders the global registry's NDJSON report.
pub fn report_ndjson() -> String {
    global().to_ndjson()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal recursive-descent JSON validator — enough to prove every
    /// emitted line is standalone valid JSON without external crates.
    mod json {
        pub fn validate(s: &str) -> Result<(), String> {
            let b = s.as_bytes();
            let mut i = 0usize;
            value(b, &mut i)?;
            skip_ws(b, &mut i);
            if i != b.len() {
                return Err(format!("trailing data at byte {i}"));
            }
            Ok(())
        }

        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
                *i += 1;
            }
        }

        fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
            skip_ws(b, i);
            match b.get(*i) {
                Some(b'{') => object(b, i),
                Some(b'[') => array(b, i),
                Some(b'"') => string(b, i),
                Some(b't') => literal(b, i, b"true"),
                Some(b'f') => literal(b, i, b"false"),
                Some(b'n') => literal(b, i, b"null"),
                Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
                other => Err(format!("unexpected {other:?} at byte {i}")),
            }
        }

        fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
            if b[*i..].starts_with(lit) {
                *i += lit.len();
                Ok(())
            } else {
                Err(format!("bad literal at byte {i}"))
            }
        }

        fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1; // {
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }

        fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1; // [
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }

        fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
            if b.get(*i) != Some(&b'"') {
                return Err(format!("expected string at byte {i}"));
            }
            *i += 1;
            while let Some(&c) = b.get(*i) {
                match c {
                    b'"' => {
                        *i += 1;
                        return Ok(());
                    }
                    b'\\' => *i += 2,
                    _ => *i += 1,
                }
            }
            Err("unterminated string".into())
        }

        fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
            let start = *i;
            if b.get(*i) == Some(&b'-') {
                *i += 1;
            }
            let digits = |b: &[u8], i: &mut usize| {
                let s = *i;
                while *i < b.len() && b[*i].is_ascii_digit() {
                    *i += 1;
                }
                *i > s
            };
            if !digits(b, i) {
                return Err(format!("bad number at byte {start}"));
            }
            if b.get(*i) == Some(&b'.') {
                *i += 1;
                if !digits(b, i) {
                    return Err(format!("bad fraction at byte {start}"));
                }
            }
            if matches!(b.get(*i), Some(b'e') | Some(b'E')) {
                *i += 1;
                if matches!(b.get(*i), Some(b'+') | Some(b'-')) {
                    *i += 1;
                }
                if !digits(b, i) {
                    return Err(format!("bad exponent at byte {start}"));
                }
            }
            Ok(())
        }
    }

    #[test]
    fn counters_accumulate_and_read_back() {
        let reg = Registry::new(Mode::Metrics);
        reg.counter_add("a.b", 3);
        reg.counter_add("a.b", 4);
        reg.counter_add("z", 1);
        assert_eq!(reg.counter("a.b"), 7);
        assert_eq!(reg.counter("z"), 1);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new(Mode::Off);
        reg.counter_add("a", 5);
        reg.gauge_set("g", 1.5);
        reg.record_value("h", 1.0);
        {
            let _g = reg.span("s");
        }
        reg.record_run("r", 1, 2, 0.5, &[0.4]);
        assert_eq!(reg.counter("a"), 0);
        assert_eq!(reg.gauge("g"), None);
        assert!(reg.histogram("h").is_none());
        let report = reg.to_ndjson();
        assert_eq!(report.lines().count(), 1, "meta line only: {report}");
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let reg = Registry::new(Mode::Metrics);
        assert_eq!(reg.gauge("occ"), None);
        reg.gauge_set("occ", 3.0);
        reg.gauge_set("occ", 7.5);
        reg.gauge_set("ratio", 0.25);
        assert_eq!(reg.gauge("occ"), Some(7.5));
        assert_eq!(reg.gauge("ratio"), Some(0.25));
        let report = reg.to_ndjson();
        let gauge_lines: Vec<&str> = report
            .lines()
            .filter(|l| l.contains("\"type\":\"gauge\""))
            .collect();
        assert_eq!(gauge_lines.len(), 2, "{report}");
        assert!(gauge_lines[0].contains("\"name\":\"occ\""), "{report}");
        assert!(gauge_lines[0].contains("7.5"), "{report}");
    }

    #[test]
    fn histogram_moments_and_buckets() {
        let reg = Registry::new(Mode::Metrics);
        for v in [1e-9, 2e-9, 4e-9, 1.0] {
            reg.record_value("lat", v);
        }
        let h = reg.histogram("lat").unwrap();
        assert_eq!(h.count(), 4);
        assert!((h.sum() - (7e-9 + 1.0)).abs() < 1e-12);
        assert!(h.mean() > 0.0);
        // NaN must not poison the moments.
        reg.record_value("lat", f64::NAN);
        let h = reg.histogram("lat").unwrap();
        assert_eq!(h.count(), 5);
        assert!(h.sum().is_finite());
    }

    #[test]
    fn bucket_mapping_is_monotone_and_clamped() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(-1.0), 0);
        assert_eq!(Histogram::bucket_of(f64::NAN), 0);
        assert_eq!(Histogram::bucket_of(1e-30), 0);
        assert_eq!(Histogram::bucket_of(1e30), HIST_BUCKETS - 1);
        let mut last = 0;
        for exp in -17..13 {
            let b = Histogram::bucket_of(10f64.powi(exp));
            assert!(b >= last, "bucket not monotone at 1e{exp}");
            last = b;
        }
    }

    #[test]
    fn spans_nest_into_paths() {
        let reg = Registry::new(Mode::Metrics);
        {
            let _a = reg.span("outer");
            {
                let _b = reg.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        {
            let _a = reg.span("outer");
        }
        let report = reg.to_ndjson();
        assert!(report.contains("\"path\":\"outer\""), "{report}");
        assert!(report.contains("\"path\":\"outer/inner\""), "{report}");
        // Two "outer" closings aggregated under one path.
        let outer_line = report
            .lines()
            .find(|l| l.contains("\"path\":\"outer\""))
            .unwrap();
        assert!(outer_line.contains("\"count\":2"), "{outer_line}");
    }

    #[test]
    fn trace_mode_records_events() {
        let reg = Registry::new(Mode::Trace);
        {
            let _g = reg.span("traced");
        }
        let report = reg.to_ndjson();
        assert!(
            report
                .lines()
                .any(|l| l.contains("\"type\":\"event\"") && l.contains("traced")),
            "{report}"
        );
    }

    #[test]
    fn run_records_become_counters_and_histograms() {
        let reg = Registry::new(Mode::Metrics);
        reg.record_run("mc", 10, 4000, 0.5, &[0.4, 0.45]);
        reg.record_run("mc", 10, 4000, 0.5, &[0.5, 0.5]);
        assert_eq!(reg.counter("mc.tasks"), 20);
        assert_eq!(reg.counter("mc.samples"), 8000);
        let wall = reg.histogram("mc.wall_seconds").unwrap();
        assert_eq!(wall.count(), 2);
        let util = reg.histogram("mc.utilization").unwrap();
        assert!(util.mean() > 0.5 && util.mean() <= 1.1);
    }

    #[test]
    fn every_ndjson_line_is_valid_json() {
        let reg = Registry::new(Mode::Trace);
        reg.counter_add("weird \"name\"\\path", 1);
        reg.gauge_set("gauge \"weird\"", 1.25);
        reg.gauge_set("gauge.nan", f64::NAN);
        reg.record_value("hist", 1.5e-9);
        reg.record_value("hist", f64::INFINITY);
        {
            let _a = reg.span("a");
            let _b = reg.span("b");
        }
        reg.record_run("run", 1, 100, 1e-3, &[0.9e-3]);
        let report = reg.to_ndjson();
        assert!(report.lines().count() >= 7, "{report}");
        for line in report.lines() {
            json::validate(line).unwrap_or_else(|e| panic!("invalid JSON: {e}\nline: {line}"));
        }
        // Types all present.
        for ty in ["meta", "counter", "gauge", "histogram", "span", "event"] {
            assert!(
                report.contains(&format!("\"type\":\"{ty}\"")),
                "missing {ty}: {report}"
            );
        }
    }

    #[test]
    fn json_escaping_round_trips_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        json::validate(&json_str("ctrl\u{1}char")).unwrap();
    }

    #[test]
    fn trace_event_buffer_is_bounded() {
        let reg = Registry::new(Mode::Trace);
        for _ in 0..(TRACE_EVENT_CAP + 10) {
            let _g = reg.span("spin");
        }
        let events = reg.events.lock().unwrap().len();
        assert_eq!(events, TRACE_EVENT_CAP);
        assert_eq!(reg.counter(DROPPED_EVENTS_COUNTER), 10);
    }

    #[test]
    fn trace_overflow_is_surfaced_in_meta_not_silent() {
        // A truncated timeline must announce itself: overflow the bounded
        // buffer and assert the meta line carries the exact drop count.
        let reg = Registry::new(Mode::Trace);
        for _ in 0..(TRACE_EVENT_CAP + 25) {
            let _g = reg.span("spin");
        }
        let report = reg.to_ndjson();
        let meta = report.lines().next().expect("meta line");
        assert!(
            meta.contains("\"dropped_events\":25"),
            "meta must report drops: {meta}"
        );
        // And an un-overflowed registry reports zero, not a missing field.
        let quiet = Registry::new(Mode::Trace);
        {
            let _g = quiet.span("one");
        }
        let meta = quiet.to_ndjson();
        assert!(
            meta.lines()
                .next()
                .unwrap()
                .contains("\"dropped_events\":0"),
            "{meta}"
        );
    }

    #[test]
    fn quantiles_track_bucket_midpoints() {
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.record(1e-9);
        }
        for _ in 0..10 {
            h.record(1e-3);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!(
            (1e-10..=1e-8).contains(&p50),
            "p50 should land in the 1e-9 bucket: {p50:e}"
        );
        let p99 = h.quantile(0.99).unwrap();
        assert!(
            (1e-4..=1e-2).contains(&p99),
            "p99 should land in the 1e-3 bucket: {p99:e}"
        );
        assert!(h.quantile(0.5).unwrap() <= h.quantile(0.99).unwrap());
    }

    #[test]
    fn quantile_edge_cases_stay_honest() {
        // Empty histogram: no quantiles at all.
        assert_eq!(Histogram::default().quantile(0.5), None);

        // Single sample: every quantile is that sample, exactly — the
        // clamp to [min, max] must defeat the bucket midpoint.
        let mut single = Histogram::default();
        single.record(3.7e-6);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(single.quantile(q), Some(3.7e-6), "q={q}");
        }

        // Values at or below zero land in bucket 0 and report the observed
        // minimum, never a fabricated positive midpoint.
        let mut nonpos = Histogram::default();
        nonpos.record(-5.0);
        nonpos.record(0.0);
        assert_eq!(nonpos.quantile(0.5), Some(-5.0));

        // All-NaN histograms have no finite min; quantiles fall back to 0.
        let mut nan = Histogram::default();
        nan.record(f64::NAN);
        assert_eq!(nan.quantile(0.5), Some(0.0));

        // Clamped extremes: values beyond the bucket range report the
        // observed extreme, not the edge-bucket midpoint.
        let mut huge = Histogram::default();
        huge.record(1e30);
        assert_eq!(huge.quantile(0.99), Some(1e30));
        let mut tiny = Histogram::default();
        tiny.record(1e-30);
        assert_eq!(tiny.quantile(0.01), Some(1e-30));

        // q outside [0,1] clamps instead of panicking.
        let mut two = Histogram::default();
        two.record(1.0);
        two.record(2.0);
        assert_eq!(two.quantile(-1.0), two.quantile(0.0));
        assert_eq!(two.quantile(9.0), two.quantile(1.0));
    }

    #[test]
    fn self_time_excludes_children() {
        let reg = Registry::new(Mode::Metrics);
        {
            let _outer = reg.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = reg.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(12));
            }
        }
        let spans = reg.spans.lock().unwrap();
        let outer = &spans["outer"];
        let inner = &spans["outer/inner"];
        assert!(
            inner.self_seconds >= 0.010,
            "leaf self time is its total: {:e}",
            inner.self_seconds
        );
        assert!(
            outer.self_seconds <= outer.total_seconds - inner.total_seconds + 1e-3,
            "outer self ({:e}) must exclude inner total ({:e}) from outer total ({:e})",
            outer.self_seconds,
            inner.total_seconds,
            outer.total_seconds
        );
        assert!(outer.self_seconds >= 0.0);
    }

    #[test]
    fn span_ownership_is_attributed_per_thread() {
        // Pin this test thread's ordinal: lazy assignment draws from a
        // process-wide counter shared with every other test thread.
        set_thread_ordinal(3);
        let reg = Registry::new(Mode::Metrics);
        {
            let _main = reg.span("main_work");
        }
        std::thread::scope(|scope| {
            scope.spawn(|| {
                set_thread_ordinal(7);
                let _w = reg.span("worker_work");
            });
        });
        let report = reg.to_ndjson();
        let worker_line = report
            .lines()
            .find(|l| l.contains("worker_work"))
            .expect("worker span line");
        assert!(
            worker_line.contains("\"by_thread\":[[7,1,"),
            "worker span must be owned by tid 7: {worker_line}"
        );
        let main_line = report
            .lines()
            .find(|l| l.contains("main_work"))
            .expect("main span line");
        assert!(
            main_line.contains("\"by_thread\":[[3,1,"),
            "main-thread span must keep the pinned ordinal 3: {main_line}"
        );
    }

    #[test]
    fn parse_flag_accepts_the_documented_spellings_only() {
        for on in ["1", "true", "on", " TRUE ", "On"] {
            assert_eq!(parse_flag(on), Ok(true), "{on:?}");
        }
        for off in ["", "0", "false", "off", " OFF "] {
            assert_eq!(parse_flag(off), Ok(false), "{off:?}");
        }
        for bad in ["yes", "no", "2", "enable", "metrics", "1 1"] {
            let err = parse_flag(bad).expect_err(&format!("{bad:?} must be rejected"));
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn env_config_parses_and_warns_once_per_variable() {
        let vars = |key: &str| match key {
            TRACE_ENV => Some("banana".to_string()),
            METRICS_ENV => Some("1".to_string()),
            EVENTS_ENV => Some("maybe".to_string()),
            _ => None,
        };
        let (config, warnings) = EnvConfig::parse_from(vars);
        // Garbled MSS_TRACE counts as unset; MSS_METRICS=1 still applies.
        assert_eq!(config.mode, Mode::Metrics);
        assert!(!config.events);
        assert_eq!(config.bad_env, 2);
        assert_eq!(warnings.len(), 2, "exactly one warning per garbled var");
        assert!(warnings[0].contains(TRACE_ENV), "{warnings:?}");
        assert!(warnings[1].contains(EVENTS_ENV), "{warnings:?}");

        // Clean environment: no warnings at all.
        let (config, warnings) = EnvConfig::parse_from(|_| None);
        assert_eq!(config.mode, Mode::Off);
        assert!(!config.events);
        assert_eq!(config.bad_env, 0);
        assert!(warnings.is_empty());

        // MSS_EVENTS_PATH alone implies the bus.
        let (config, warnings) = EnvConfig::parse_from(|key| {
            (key == EVENTS_PATH_ENV).then(|| "target/custom.ndjson".to_string())
        });
        assert!(config.events);
        assert_eq!(config.events_path.as_deref(), Some("target/custom.ndjson"));
        assert!(warnings.is_empty());
    }

    #[test]
    fn registry_from_env_is_constructible() {
        // Whatever the ambient environment, construction must not panic and
        // the mode must be valid (garbled values are ignored, not fatal).
        let reg = Registry::from_env();
        assert!(matches!(
            reg.mode(),
            Mode::Off | Mode::Metrics | Mode::Trace
        ));
    }

    #[test]
    fn mode_from_env_defaults_off() {
        // The test environment does not set the variables; whatever the
        // ambient state, the parse must produce a valid mode.
        let m = Mode::from_env();
        assert!(matches!(m, Mode::Off | Mode::Metrics | Mode::Trace));
    }

    #[test]
    fn disabled_overhead_is_negligible() {
        // The tentpole promise: with observability off, instrumentation in
        // hot paths is a branch, not a cost. 10M disabled counter bumps and
        // 1M disabled span opens must stay far under a second even on slow
        // CI (the real cost is ~1-2 ns/op; the bound has ~100x headroom).
        let reg = Registry::new(Mode::Off);
        let t0 = Instant::now();
        for i in 0..10_000_000u64 {
            reg.counter_add("hot.counter", i & 1);
        }
        for _ in 0..1_000_000 {
            let _g = reg.span("hot.span");
        }
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(
            elapsed < 1.0,
            "disabled-mode overhead too high: {elapsed:.3} s for 11M ops"
        );
        assert_eq!(reg.counter("hot.counter"), 0);
    }

    #[test]
    fn global_registry_is_usable() {
        // Whatever mode the environment selected, the global API must be
        // callable and the report must be valid NDJSON.
        counter_add("obs.test.global", 1);
        record_value("obs.test.hist", 0.5);
        {
            let _g = span("obs.test.span");
        }
        record_run("obs.test.run", 1, 1, 1e-6, &[1e-6]);
        let report = report_ndjson();
        for line in report.lines() {
            json::validate(line).unwrap_or_else(|e| panic!("invalid JSON: {e}\nline: {line}"));
        }
        assert!(!init_with_mode(Mode::Off), "global already initialised");
    }
}
