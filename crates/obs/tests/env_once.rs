//! Regression test for the consolidated, cached observability env parsing.
//!
//! Before the `env_config` consolidation, `Mode::from_env` re-parsed
//! `MSS_METRICS`/`MSS_TRACE` on every call site (global registry init,
//! explicit `Registry::from_env`, diagnostics), each with its own warn-once
//! `Once` — so a garbled value was re-validated repeatedly and the
//! bad-env tally differed between consumers. This test runs in its own
//! process (integration tests are separate binaries), poisons all three
//! flag variables *before* anything consults them, and asserts every entry
//! point observes one identical cached parse.

use mss_obs::{Mode, Registry, BAD_ENV_COUNTER, EVENTS_ENV, METRICS_ENV, TRACE_ENV};

#[test]
fn garbled_flags_are_parsed_once_and_consistently() {
    // Must happen before the first env_config() call anywhere in this
    // process; keeping everything in one #[test] guarantees ordering.
    // MSS_METRICS stays valid so the registries below are live enough to
    // record the bad-env tally.
    std::env::set_var(METRICS_ENV, "1");
    std::env::set_var(TRACE_ENV, "nope");
    std::env::set_var(EVENTS_ENV, "2");

    let config = mss_obs::env_config();
    assert_eq!(config.mode, Mode::Metrics, "garbled MSS_TRACE counts unset");
    assert!(!config.events, "garbled MSS_EVENTS counts unset");
    assert_eq!(config.bad_env, 2, "both garbled vars tallied");

    // Every consumer sees the same cached parse — no re-reads, no drift.
    assert_eq!(Mode::from_env(), Mode::Metrics);
    assert!(!mss_obs::events::bus_enabled());
    assert!(std::ptr::eq(config, mss_obs::env_config()));

    // Each registry built from the env seeds the same diagnosable tally.
    let first = Registry::from_env();
    let second = Registry::from_env();
    assert_eq!(first.counter(BAD_ENV_COUNTER), 2);
    assert_eq!(second.counter(BAD_ENV_COUNTER), 2);

    // Changing the environment after the first parse is deliberately
    // ignored: the snapshot is per-process, so warnings cannot repeat.
    std::env::set_var(TRACE_ENV, "1");
    assert_eq!(
        Mode::from_env(),
        Mode::Metrics,
        "env is parsed exactly once"
    );
}
