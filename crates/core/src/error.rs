//! Error type for the MAGPIE flow.

use std::fmt;

use mss_gemsim::GemsimError;
use mss_mtj::MtjError;
use mss_nvsim::NvsimError;
use mss_pdk::PdkError;

/// Errors produced by the cross-layer flow.
#[derive(Debug, Clone, PartialEq)]
pub enum MagpieError {
    /// Device-model error.
    Device(MtjError),
    /// Characterisation / PDK error.
    Pdk(PdkError),
    /// Array-estimation error.
    Nvsim(NvsimError),
    /// System-simulation error.
    Gemsim(GemsimError),
    /// Inconsistent flow inputs (no kernels, no scenarios, ...).
    InvalidInputs {
        /// What is wrong.
        reason: String,
    },
}

impl fmt::Display for MagpieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MagpieError::Device(e) => write!(f, "device error: {e}"),
            MagpieError::Pdk(e) => write!(f, "pdk error: {e}"),
            MagpieError::Nvsim(e) => write!(f, "nvsim error: {e}"),
            MagpieError::Gemsim(e) => write!(f, "gemsim error: {e}"),
            MagpieError::InvalidInputs { reason } => write!(f, "invalid inputs: {reason}"),
        }
    }
}

impl std::error::Error for MagpieError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MagpieError::Device(e) => Some(e),
            MagpieError::Pdk(e) => Some(e),
            MagpieError::Nvsim(e) => Some(e),
            MagpieError::Gemsim(e) => Some(e),
            MagpieError::InvalidInputs { .. } => None,
        }
    }
}

impl From<MtjError> for MagpieError {
    fn from(e: MtjError) -> Self {
        MagpieError::Device(e)
    }
}

impl From<PdkError> for MagpieError {
    fn from(e: PdkError) -> Self {
        MagpieError::Pdk(e)
    }
}

impl From<NvsimError> for MagpieError {
    fn from(e: NvsimError) -> Self {
        MagpieError::Nvsim(e)
    }
}

impl From<GemsimError> for MagpieError {
    fn from(e: GemsimError) -> Self {
        MagpieError::Gemsim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MagpieError = NvsimError::NoFeasibleDesign.into();
        assert!(e.to_string().contains("nvsim"));
        let e: MagpieError = GemsimError::InvalidSystem { reason: "x".into() }.into();
        assert!(e.to_string().contains("gemsim"));
    }
}
