//! The MAGPIE evaluation flow: characterise → estimate → simulate → account.
//!
//! Every stage routes through the content-addressed [`mss_pipe`] cache, so a
//! sweep over nodes, kernels or scenarios reuses the upstream artifacts
//! (characterised cell libraries, estimated array macros, simulated activity
//! reports) that its points share. Memoization is semantically transparent:
//! every stage computation is pure, so the report is bit-identical at any
//! thread count and any cache temperature.

use std::sync::{Arc, Mutex};

use mss_exec::supervise::{CancelToken, SupervisorConfig};
use mss_exec::{par_map, ParallelConfig, TaskFailure};
use mss_gemsim::cache::CacheConfig;
use mss_gemsim::stats::SimReport;
use mss_gemsim::system::{EpochSkipConfig, Placement, System, SystemConfig};
use mss_gemsim::workload::Kernel;
use mss_mcpat::{evaluate as mcpat_evaluate, McpatConfig, PowerReport};
use mss_mtj::{MechanismConfig, MssStack, SotParams};
use mss_nvsim::config::MemoryConfig;
use mss_nvsim::model::{estimate_cached, ArrayMetrics, MemoryTechnology};
use mss_pdk::charlib::{
    characterize_sot_with_cached, characterize_with_cached, CellLibrary, SotCellLibrary,
};
use mss_pdk::tech::{TechNode, TechParams};
use mss_pipe::checkpoint::{SweepJournal, TaskState};
use mss_pipe::{digest_of, PipeCache, Stage};

use crate::scenario::{CacheTech, Scenario};
use crate::MagpieError;

/// STT-MRAM over SRAM density advantage used for iso-area replacement.
///
/// `146 F² / 40 F²` rounds to 4× when keeping power-of-two cache sets.
pub const ISO_AREA_CAPACITY_FACTOR: u64 = 4;

/// SOT-MRAM over SRAM density advantage used for iso-area replacement.
///
/// The characterised three-terminal cell — its write access device sized
/// for the channel's SHE critical current (~20 F wide at 45 nm) plus the
/// 1.5× routing overhead of the second terminal — lands at ~154 F²,
/// essentially the 6T SRAM footprint. The iso-area LITTLE replacement is
/// therefore **capacity-neutral**: SOT's win is write latency and energy,
/// not density (that is STT's trade).
pub const ISO_AREA_CAPACITY_FACTOR_SOT: u64 = 1;

/// Inputs of one flow evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct MagpieInputs {
    /// Technology node (the paper's Fig. 12 uses 45 nm).
    pub node: TechNode,
    /// Kernels to execute.
    pub kernels: Vec<Kernel>,
    /// Scenarios to compare.
    pub scenarios: Vec<Scenario>,
    /// Simulation seed.
    pub seed: u64,
    /// Per-thread memory-access sampling cap for `mss-gemsim`.
    pub sample_cap: u64,
    /// Switching-mechanism configuration for the MRAM cells. The default
    /// [`MechanismConfig::Stt`] reproduces the paper exactly;
    /// [`MechanismConfig::Sot`] overrides the channel parameters the SOT
    /// scenarios are characterised with (SOT scenarios run with
    /// [`SotParams::default`] otherwise).
    pub mechanism: MechanismConfig,
    /// Opt-in steady-state extrapolation for the gemsim hot loop (the
    /// epoch-skip knob). `None` — the default — simulates every sampled
    /// access exactly, keeping reports and digests byte-identical to the
    /// historic flow; `Some` trades tail accuracy for speed and reports
    /// the skipped references per result via
    /// [`SimReport::extrapolated_accesses`].
    pub epoch_skip: Option<EpochSkipConfig>,
}

impl MagpieInputs {
    /// The paper-default knobs for the fields beyond the sweep grid:
    /// STT mechanism, exact (no epoch-skip) simulation. Construction sites
    /// that only care about the grid spread this.
    pub fn defaults() -> Self {
        Self {
            node: TechNode::N45,
            kernels: Vec::new(),
            scenarios: Vec::new(),
            seed: 0,
            sample_cap: 50_000,
            mechanism: MechanismConfig::Stt,
            epoch_skip: None,
        }
    }

    /// The SOT channel parameters SOT scenarios characterise with: the
    /// override carried by [`MechanismConfig::Sot`], or the β-W defaults.
    pub fn sot_params(&self) -> SotParams {
        match &self.mechanism {
            MechanismConfig::Sot(p) => p.clone(),
            MechanismConfig::Stt => SotParams::default(),
        }
    }

    /// Validates the inputs before any stage runs.
    ///
    /// # Errors
    ///
    /// [`MagpieError::InvalidInputs`] with a distinct reason per defect:
    /// empty kernel list, empty scenario list, zero sampling cap, a kernel
    /// whose own [`Kernel::validate`] rejects it, out-of-range SOT channel
    /// parameters, or an invalid epoch-skip configuration.
    pub fn validate(&self) -> Result<(), MagpieError> {
        if self.kernels.is_empty() {
            return Err(MagpieError::InvalidInputs {
                reason: "kernels must be non-empty".into(),
            });
        }
        if self.scenarios.is_empty() {
            return Err(MagpieError::InvalidInputs {
                reason: "scenarios must be non-empty".into(),
            });
        }
        if self.sample_cap == 0 {
            return Err(MagpieError::InvalidInputs {
                reason: "sample_cap must be non-zero".into(),
            });
        }
        for kernel in &self.kernels {
            kernel.validate().map_err(|e| MagpieError::InvalidInputs {
                reason: format!("kernel {}: {e}", kernel.name),
            })?;
        }
        if let MechanismConfig::Sot(p) = &self.mechanism {
            p.validate().map_err(|e| MagpieError::InvalidInputs {
                reason: format!("SOT mechanism: {e}"),
            })?;
        }
        if let Some(es) = &self.epoch_skip {
            es.validate().map_err(|e| MagpieError::InvalidInputs {
                reason: format!("epoch-skip: {e}"),
            })?;
        }
        Ok(())
    }
}

/// One (kernel, scenario) evaluation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelScenarioResult {
    /// Scenario evaluated.
    pub scenario: Scenario,
    /// Kernel name.
    pub kernel: String,
    /// Execution time, seconds.
    pub runtime: f64,
    /// Total system energy, joules.
    pub energy: f64,
    /// Energy-delay product, J·s.
    pub edp: f64,
    /// Component-level energy breakdown.
    pub power: PowerReport,
    /// Raw system activity.
    pub activity: SimReport,
}

/// Silicon-area accounting for one scenario (the paper's Fig. 10 output:
/// "total performance, total energy and total area").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioArea {
    /// Scenario this area belongs to.
    pub scenario: Scenario,
    /// Total core area (big + LITTLE), m².
    pub cores: f64,
    /// All L1 data caches, m².
    pub l1: f64,
    /// big-cluster L2 macro, m².
    pub l2_big: f64,
    /// LITTLE-cluster L2 macro, m².
    pub l2_little: f64,
}

impl ScenarioArea {
    /// Total accounted silicon, m².
    pub fn total(&self) -> f64 {
        self.cores + self.l1 + self.l2_big + self.l2_little
    }
}

/// The complete flow report.
#[derive(Debug, Clone, PartialEq)]
pub struct MagpieReport {
    /// Every (kernel, scenario) outcome.
    pub results: Vec<KernelScenarioResult>,
    /// Per-scenario area accounting.
    pub areas: Vec<ScenarioArea>,
}

/// The flow driver.
#[derive(Debug, Clone)]
pub struct MagpieFlow {
    inputs: MagpieInputs,
    tech: TechParams,
    stt_lib: CellLibrary,
    /// The three-terminal SOT cell library — characterised only when the
    /// grid contains a SOT scenario, so pure-STT flows never pay for (or
    /// key on) the second characterisation.
    sot_lib: Option<SotCellLibrary>,
    cache: Arc<PipeCache>,
}

impl MagpieFlow {
    /// Runs the circuit-level characterisation and prepares the flow,
    /// memoizing through the process-global [`mss_pipe`] cache.
    ///
    /// # Errors
    ///
    /// [`MagpieError::InvalidInputs`] on invalid inputs (see
    /// [`MagpieInputs::validate`]); characterisation failures propagate.
    pub fn new(inputs: MagpieInputs) -> Result<Self, MagpieError> {
        Self::new_with_cache(inputs, mss_pipe::global())
    }

    /// [`new`](Self::new) against an explicit cache — use this to isolate
    /// flows from each other (tests) or to share a warm cache across sweeps.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn new_with_cache(
        inputs: MagpieInputs,
        cache: Arc<PipeCache>,
    ) -> Result<Self, MagpieError> {
        inputs.validate()?;
        let tech = TechParams::node(inputs.node);
        let stack = MssStack::builder().build()?;
        let stt_lib = {
            let _span = mss_obs::span("flow.characterize");
            (*characterize_with_cached(&tech, &stack, &cache)?).clone()
        };
        let sot_lib = if inputs.scenarios.iter().any(|s| s.uses_sot()) {
            let _span = mss_obs::span("flow.characterize_sot");
            let params = inputs.sot_params();
            Some((*characterize_sot_with_cached(&tech, &stack, &params, &cache)?).clone())
        } else {
            None
        };
        Ok(Self {
            tech,
            stt_lib,
            sot_lib,
            inputs,
            cache,
        })
    }

    /// The characterised STT cell library (cell configuration file).
    pub fn cell_library(&self) -> &CellLibrary {
        &self.stt_lib
    }

    /// The characterised SOT cell library; `None` when the scenario grid
    /// contains no SOT scenario.
    pub fn sot_cell_library(&self) -> Option<&SotCellLibrary> {
        self.sot_lib.as_ref()
    }

    /// The stage cache this flow memoizes through.
    pub fn cache(&self) -> &Arc<PipeCache> {
        &self.cache
    }

    /// Estimates one cache macro with NVSim and converts it into the
    /// simulator's cache record.
    fn cache_config(
        &self,
        name: &str,
        capacity: u64,
        associativity: u32,
        tech_kind: CacheTech,
    ) -> Result<(CacheConfig, ArrayMetrics), MagpieError> {
        let line = 64u32;
        let mem_cfg = MemoryConfig::new(
            capacity,
            (line * 8).min(512),
            1,
            subarray_rows_for(capacity),
            512,
            mss_nvsim::config::MemoryKind::Cache {
                associativity,
                line_bytes: line,
            },
        )?;
        let technology = match tech_kind {
            CacheTech::Sram => MemoryTechnology::Sram,
            CacheTech::Stt => MemoryTechnology::SttMram(self.stt_lib.clone()),
            CacheTech::Sot => {
                let lib = self
                    .sot_lib
                    .as_ref()
                    .ok_or_else(|| MagpieError::InvalidInputs {
                        reason: format!(
                            "{name}: SOT macro requested but no SOT scenario in the grid"
                        ),
                    })?;
                MemoryTechnology::SotMram(lib.clone())
            }
        };
        let m = (*estimate_cached(&self.tech, &mem_cfg, &technology, &self.cache)?).clone();
        Ok((
            CacheConfig {
                name: name.to_string(),
                capacity,
                associativity,
                line_bytes: line,
                read_latency: m.read_latency,
                write_latency: m.write_latency,
                read_energy: m.read_energy,
                write_energy: m.write_energy,
                leakage_power: m.leakage_power,
            },
            m,
        ))
    }

    /// Builds the platform configuration for a scenario, with every cache's
    /// timing/energy/leakage coming from the NVSim layer.
    ///
    /// # Errors
    ///
    /// Estimation failures propagate.
    pub fn system_config(&self, scenario: Scenario) -> Result<SystemConfig, MagpieError> {
        let mut base = SystemConfig::big_little_default();
        base.sample_accesses_per_thread = self.inputs.sample_cap;
        base.epoch_skip = self.inputs.epoch_skip;

        // L1s: always SRAM, re-estimated from the node for consistency.
        for cluster in &mut base.clusters {
            let (l1, _) =
                self.cache_config(&cluster.l1d.name.clone(), 32 << 10, 4, CacheTech::Sram)?;
            cluster.l1d = l1;
        }

        // big L2: 2 MiB; iso-capacity replacement when MRAM.
        let big_tech = scenario.big_l2_tech();
        let (big_l2, _) = self.cache_config("big.L2", 2 << 20, 16, big_tech)?;
        base.clusters[0].l2 = big_l2;

        // LITTLE L2: 512 KiB SRAM; iso-area replacement when MRAM (4x
        // capacity for the STT cell, 2x for the larger three-terminal SOT
        // cell).
        let little_tech = scenario.little_l2_tech();
        let little_capacity = (512 << 10) * little_iso_area_factor(little_tech);
        let (little_l2, _) = self.cache_config("LITTLE.L2", little_capacity, 8, little_tech)?;
        base.clusters[1].l2 = little_l2;

        Ok(base)
    }

    /// Area accounting for a scenario: McPAT core areas plus NVSim macro
    /// areas for every cache.
    ///
    /// # Errors
    ///
    /// Estimation failures propagate.
    pub fn scenario_area(&self, scenario: Scenario) -> Result<ScenarioArea, MagpieError> {
        let mcpat_cfg = McpatConfig::default();
        let base = SystemConfig::big_little_default();
        let cores = base.clusters[0].cores as f64 * mcpat_cfg.big.area
            + base.clusters[1].cores as f64 * mcpat_cfg.little.area;
        let (_, l1m) = self.cache_config("l1.probe", 32 << 10, 4, CacheTech::Sram)?;
        let l1 = l1m.area * base.clusters.iter().map(|c| c.cores as f64).sum::<f64>();
        let (_, big) = self.cache_config("big.L2", 2 << 20, 16, scenario.big_l2_tech())?;
        let little_tech = scenario.little_l2_tech();
        let little_capacity = (512 << 10) * little_iso_area_factor(little_tech);
        let (_, little) = self.cache_config("LITTLE.L2", little_capacity, 8, little_tech)?;
        Ok(ScenarioArea {
            scenario,
            cores,
            l1,
            l2_big: big.area,
            l2_little: little.area,
        })
    }

    /// Runs every (kernel, scenario) pair.
    ///
    /// Parallelism policy comes from the environment (`MSS_THREADS` or all
    /// cores); use [`run_with`](Self::run_with) for explicit control. The
    /// report is independent of the thread count.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation failures.
    pub fn run(&self) -> Result<MagpieReport, MagpieError> {
        self.run_with(&ParallelConfig::from_env())
    }

    /// [`run`](Self::run) with an explicit thread policy: scenarios are
    /// prepared in parallel, then every (scenario, kernel) simulation fans
    /// out as its own task; results are reduced in scenario-major order.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with(&self, exec: &ParallelConfig) -> Result<MagpieReport, MagpieError> {
        let _flow_span = mss_obs::span("flow.run");
        let mcpat_cfg = McpatConfig::default();
        let prepare_span = mss_obs::span("flow.prepare");
        // Stage 1: per-scenario estimation (NVSim/McPAT) and platform build.
        let prepared = par_map(exec, &self.inputs.scenarios, |_, &scenario| {
            let area = self.scenario_area(scenario)?;
            let system = System::new(self.system_config(scenario)?)?;
            Ok::<_, MagpieError>((area, system))
        });
        let mut areas = Vec::new();
        let mut systems = Vec::new();
        for item in prepared {
            let (area, system) = item?;
            areas.push(area);
            systems.push(system);
        }
        drop(prepare_span);
        let simulate_span = mss_obs::span("flow.simulate");

        // Stage 2: one task per (scenario, kernel) pair, scenario-major so
        // the report order matches the sequential flow.
        let pairs: Vec<(usize, usize)> = (0..self.inputs.scenarios.len())
            .flat_map(|s| (0..self.inputs.kernels.len()).map(move |k| (s, k)))
            .collect();
        let evaluated = par_map(exec, &pairs, |_, &(s, k)| {
            self.evaluate_pair(&systems, &mcpat_cfg, s, k, None)
        });
        let results = evaluated.into_iter().collect::<Result<Vec<_>, _>>()?;
        drop(simulate_span);
        Ok(MagpieReport { results, areas })
    }

    /// [`run_with`](Self::run_with) under the sweep supervisor: each
    /// (scenario, kernel) simulation is panic-isolated, deadline-bounded,
    /// and retried per `sup`, and a failure removes only its own pair from
    /// the report instead of aborting the sweep.
    ///
    /// Completed pairs are bit-identical to the corresponding
    /// [`run_with`](Self::run_with) results at any thread count.
    ///
    /// # Errors
    ///
    /// Only preparation failures (characterisation/estimation/platform
    /// build) are hard errors; simulation failures are returned in the
    /// partial report's failure manifest.
    pub fn run_supervised(
        &self,
        exec: &ParallelConfig,
        sup: &SupervisorConfig,
    ) -> Result<PartialMagpieReport, MagpieError> {
        self.run_supervised_inner(exec, sup, None)
    }

    /// [`run_supervised`](Self::run_supervised) with a checkpoint journal:
    /// every terminal task outcome (done with its stage digest, or failed
    /// with its cause) is durably appended to `journal` as it happens, so a
    /// killed process leaves an accurate manifest behind and a resumed run
    /// finds every completed pair's artifacts in the disk cache.
    ///
    /// The journal should be opened against
    /// [`sweep_digest`](Self::sweep_digest) so manifests from different
    /// sweep configurations never alias.
    ///
    /// # Errors
    ///
    /// Same as [`run_supervised`](Self::run_supervised); journal append
    /// failures are non-fatal (the sweep's results are still returned).
    pub fn run_supervised_journaled(
        &self,
        exec: &ParallelConfig,
        sup: &SupervisorConfig,
        journal: &mut SweepJournal,
    ) -> Result<PartialMagpieReport, MagpieError> {
        self.run_supervised_inner(exec, sup, Some(journal))
    }

    fn run_supervised_inner(
        &self,
        exec: &ParallelConfig,
        sup: &SupervisorConfig,
        journal: Option<&mut SweepJournal>,
    ) -> Result<PartialMagpieReport, MagpieError> {
        let _flow_span = mss_obs::span("flow.run");
        let mcpat_cfg = McpatConfig::default();
        let prepare_span = mss_obs::span("flow.prepare");
        let prepared = par_map(exec, &self.inputs.scenarios, |_, &scenario| {
            let area = self.scenario_area(scenario)?;
            let system = System::new(self.system_config(scenario)?)?;
            Ok::<_, MagpieError>((area, system))
        });
        let mut areas = Vec::new();
        let mut systems = Vec::new();
        for item in prepared {
            let (area, system) = item?;
            areas.push(area);
            systems.push(system);
        }
        drop(prepare_span);
        let simulate_span = mss_obs::span("flow.simulate");

        let pairs: Vec<(usize, usize)> = (0..self.inputs.scenarios.len())
            .flat_map(|s| (0..self.inputs.kernels.len()).map(move |k| (s, k)))
            .collect();
        let journal = journal.map(Mutex::new);
        let sup = if sup.label.is_empty() {
            sup.with_label("flow.sweep")
        } else {
            *sup
        };
        let sweep = mss_exec::supervised_map(exec, &sup, &pairs, |ctx, &(s, k)| {
            let result = self.evaluate_pair(&systems, &mcpat_cfg, s, k, Some(ctx.token()))?;
            if let Some(journal) = &journal {
                // Journal appends are best-effort: losing a checkpoint line
                // costs a future resume one cheap disk-cache hit, which is
                // not worth failing a completed simulation over.
                let digest = self.pair_sim_key(&systems, s, k);
                if let Ok(mut j) = journal.lock() {
                    let _ = j.record(&self.pair_task_name(s, k), TaskState::Done { digest });
                }
            }
            Ok::<_, MagpieError>(result)
        });
        drop(simulate_span);
        if let Some(journal) = journal {
            if let Ok(j) = &mut journal.lock() {
                for failure in &sweep.failures {
                    let (s, k) = pairs[failure.index];
                    let _ = j.record(
                        &self.pair_task_name(s, k),
                        TaskState::Failed {
                            cause: failure.kind.to_string(),
                        },
                    );
                }
            }
        }
        let results = sweep.results.into_iter().flatten().collect();
        Ok(PartialMagpieReport {
            report: MagpieReport { results, areas },
            failures: sweep.failures,
        })
    }

    /// The structural digest identifying this flow's sweep: open checkpoint
    /// journals against it so manifests from different inputs never alias.
    ///
    /// The mechanism and epoch-skip knobs are folded in **only when set**:
    /// a default-STT exact sweep hashes exactly as it did before those
    /// knobs existed, so historic journals and disk caches stay valid.
    pub fn sweep_digest(&self) -> String {
        let kernels: Vec<&str> = self
            .inputs
            .kernels
            .iter()
            .map(|k| k.name.as_str())
            .collect();
        let scenarios: Vec<String> = self
            .inputs
            .scenarios
            .iter()
            .map(ToString::to_string)
            .collect();
        let base = (
            format!("{:?}", self.inputs.node),
            kernels.join(","),
            scenarios.join(","),
            (self.inputs.seed, self.inputs.sample_cap),
        );
        if self.inputs.mechanism.is_default() && self.inputs.epoch_skip.is_none() {
            digest_of(&base)
        } else {
            digest_of(&(base, self.inputs.mechanism.clone(), self.inputs.epoch_skip))
        }
    }

    /// Stable journal key of one (scenario, kernel) task.
    fn pair_task_name(&self, s: usize, k: usize) -> String {
        format!(
            "{}/{}",
            self.inputs.scenarios[s], self.inputs.kernels[k].name
        )
    }

    /// The simulate-stage cache key of one (scenario, kernel) pair.
    ///
    /// The platform configuration fully determines the (deterministic)
    /// simulation, so the key is (system, kernel, seed) — scenarios that
    /// build identical platforms share the activity report.
    fn pair_sim_key(&self, systems: &[System], s: usize, k: usize) -> String {
        digest_of(&(
            systems[s].config(),
            &self.inputs.kernels[k],
            self.inputs.seed,
        ))
    }

    /// Evaluates one (scenario, kernel) pair through the cached simulate and
    /// account stages, optionally honouring a cancellation token at the
    /// simulator's chunk boundaries.
    fn evaluate_pair(
        &self,
        systems: &[System],
        mcpat_cfg: &McpatConfig,
        s: usize,
        k: usize,
        token: Option<&CancelToken>,
    ) -> Result<KernelScenarioResult, MagpieError> {
        let scenario = self.inputs.scenarios[s];
        let kernel = &self.inputs.kernels[k];
        let sim_key = self.pair_sim_key(systems, s, k);
        // SimReport is a disk-capable artifact, so completed simulations
        // survive a process kill and a resumed sweep reloads them instead
        // of recomputing.
        let activity =
            self.cache
                .get_or_compute_artifact(Stage::SimulateKernel, &sim_key, || {
                    match token {
                        Some(token) => systems[s].run_cancellable(
                            kernel,
                            self.inputs.seed,
                            &Placement::AllClusters,
                            token,
                        ),
                        None => systems[s].run(kernel, self.inputs.seed),
                    }
                    .map_err(MagpieError::from)
                })?;
        let label = format!("{} / {}", kernel.name, scenario);
        // The label is part of the key: a shared activity report must not
        // leak another scenario's label into this one's power report.
        let power_key = digest_of(&(sim_key.as_str(), mcpat_cfg, label.as_str()));
        let power = self
            .cache
            .get_or_compute(Stage::McpatAccount, &power_key, || {
                let mut power = mcpat_evaluate(mcpat_cfg, &activity);
                power.label = label.clone();
                Ok::<_, MagpieError>(power)
            })?;
        let power = (*power).clone();
        let activity = (*activity).clone();
        Ok(KernelScenarioResult {
            scenario,
            kernel: kernel.name.clone(),
            runtime: activity.runtime_seconds,
            energy: power.total_energy(),
            edp: power.edp(),
            power,
            activity,
        })
    }
}

/// Outcome of a supervised flow run: the completed pairs plus the terminal
/// failures that were isolated away from them.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialMagpieReport {
    /// The report over completed pairs only, in scenario-major order. All
    /// [`MagpieReport`] renderers tolerate the holes (missing pairs render
    /// as absent rows, not zeros).
    pub report: MagpieReport,
    /// Terminal failures, sorted by task index.
    pub failures: Vec<TaskFailure>,
}

impl PartialMagpieReport {
    /// True when every pair completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// The failure manifest as NDJSON, one line per failed pair (empty
    /// string when complete).
    pub fn failure_manifest(&self) -> String {
        self.failures
            .iter()
            .map(TaskFailure::to_json_line)
            .map(|l| l + "\n")
            .collect()
    }
}

/// Iso-area capacity multiplier of the LITTLE L2 replacement for a cell
/// technology (1× for SRAM itself).
fn little_iso_area_factor(tech: CacheTech) -> u64 {
    match tech {
        CacheTech::Sram => 1,
        CacheTech::Stt => ISO_AREA_CAPACITY_FACTOR,
        CacheTech::Sot => ISO_AREA_CAPACITY_FACTOR_SOT,
    }
}

/// Picks a subarray row count that divides the capacity sensibly.
fn subarray_rows_for(capacity: u64) -> u32 {
    let bits = capacity * 8;
    if bits >= (512 * 512) as u64 {
        512
    } else {
        ((bits / 512).max(64) as u32).next_power_of_two()
    }
}

impl MagpieReport {
    /// Looks up one result.
    pub fn result(&self, kernel: &str, scenario: Scenario) -> Option<&KernelScenarioResult> {
        self.results
            .iter()
            .find(|r| r.kernel == kernel && r.scenario == scenario)
    }

    /// Kernel names present, in first-seen order.
    pub fn kernels(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for r in &self.results {
            if !out.contains(&r.kernel) {
                out.push(r.kernel.clone());
            }
        }
        out
    }

    /// (time, energy, EDP) of a scenario normalised to Full-SRAM for one
    /// kernel; `None` when either result is missing.
    pub fn normalized(&self, kernel: &str, scenario: Scenario) -> Option<(f64, f64, f64)> {
        let reference = self.result(kernel, Scenario::FullSram)?;
        let r = self.result(kernel, scenario)?;
        Some((
            r.runtime / reference.runtime,
            r.energy / reference.energy,
            r.edp / reference.edp,
        ))
    }

    /// Area record of a scenario.
    pub fn area(&self, scenario: Scenario) -> Option<&ScenarioArea> {
        self.areas.iter().find(|a| a.scenario == scenario)
    }

    /// Renders the Fig. 10-style output summary: total performance, total
    /// energy and total area per scenario, for one kernel.
    pub fn fig10_summary(&self, kernel: &str) -> String {
        use mss_units::fmt::Eng;
        let mut out = format!(
            "== Fig.10 outputs: performance / energy / area, kernel {kernel} ==\n{:<20} | {:>12} | {:>12} | {:>12}\n",
            "scenario", "runtime", "energy", "area"
        );
        for s in Scenario::ALL_WITH_SOT {
            let Some(r) = self.result(kernel, s) else {
                continue;
            };
            // A scenario without an area record renders as "n/a": a silent
            // 0.000 mm2 would read as a real (and absurd) measurement.
            let area = match self.area(s) {
                Some(a) => format!("{:>9.3} mm2", a.total() * 1e6),
                None => format!("{:>13}", "n/a"),
            };
            out.push_str(&format!(
                "{:<20} | {:>12} | {:>12} | {area}\n",
                s.to_string(),
                Eng(r.runtime, "s").to_string(),
                Eng(r.energy, "J").to_string(),
            ));
        }
        out
    }

    /// Renders the Fig. 11 energy-breakdown table for one kernel: one column
    /// block per scenario, one row per component.
    pub fn fig11_table(&self, kernel: &str) -> String {
        use mss_units::fmt::Eng;
        let mut out = format!("== Fig.11: energy breakdown by component, kernel {kernel} ==\n");
        let scenarios: Vec<Scenario> = Scenario::ALL_WITH_SOT
            .into_iter()
            .filter(|s| self.result(kernel, *s).is_some())
            .collect();
        // Component names from the reference scenario.
        let Some(reference) = scenarios.first().and_then(|s| self.result(kernel, *s)) else {
            return out + "(no results)\n";
        };
        out.push_str(&format!("{:<16}", "component"));
        for s in &scenarios {
            out.push_str(&format!(" | {:>20}", s.to_string()));
        }
        out.push('\n');
        for comp in &reference.power.components {
            out.push_str(&format!("{:<16}", comp.name));
            for s in &scenarios {
                let cell = self
                    .result(kernel, *s)
                    .and_then(|r| r.power.component(&comp.name))
                    .map(|c| Eng(c.total(), "J").to_string())
                    .unwrap_or_else(|| "n/a".into());
                out.push_str(&format!(" | {cell:>20}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<16}", "TOTAL"));
        for s in &scenarios {
            let cell = self
                .result(kernel, *s)
                .map(|r| Eng(r.energy, "J").to_string())
                .unwrap_or_else(|| "n/a".into());
            out.push_str(&format!(" | {cell:>20}"));
        }
        out.push('\n');
        out
    }

    /// Serialises the Fig. 11 breakdown as CSV (component, one column per
    /// scenario; values in joules).
    pub fn fig11_csv(&self, kernel: &str) -> String {
        let scenarios: Vec<Scenario> = Scenario::ALL_WITH_SOT
            .into_iter()
            .filter(|s| self.result(kernel, *s).is_some())
            .collect();
        let mut out = String::from("component");
        for s in &scenarios {
            out.push_str(&format!(",{s}"));
        }
        out.push('\n');
        let Some(reference) = scenarios.first().and_then(|s| self.result(kernel, *s)) else {
            return out;
        };
        for comp in &reference.power.components {
            out.push_str(&comp.name);
            for s in &scenarios {
                match self
                    .result(kernel, *s)
                    .and_then(|r| r.power.component(&comp.name))
                {
                    Some(c) => out.push_str(&format!(",{:.6e}", c.total())),
                    None => out.push_str(",n/a"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serialises the Fig. 12 normalised merits as CSV
    /// (`kernel,scenario,time,energy,edp`).
    pub fn fig12_csv(&self) -> String {
        let mut out = String::from("kernel,scenario,time,energy,edp\n");
        for kernel in self.kernels() {
            for s in Scenario::ALL_WITH_SOT {
                if s == Scenario::FullSram {
                    continue;
                }
                if let Some((t, e, edp)) = self.normalized(&kernel, s) {
                    out.push_str(&format!("{kernel},{s},{t:.6},{e:.6},{edp:.6}\n"));
                }
            }
        }
        out
    }

    /// Renders the Fig. 12 table: per kernel, execution time / energy / EDP
    /// of each STT scenario normalised to Full-SRAM.
    pub fn fig12_table(&self) -> String {
        let mut out =
            String::from("== Fig.12: execution time / energy / EDP normalised to Full-SRAM ==\n");
        out.push_str(&format!(
            "{:<14} | {:<20} | {:>8} | {:>8} | {:>8}\n",
            "kernel", "scenario", "time", "energy", "EDP"
        ));
        for kernel in self.kernels() {
            for s in Scenario::ALL_WITH_SOT {
                if s == Scenario::FullSram {
                    continue;
                }
                if let Some((t, e, edp)) = self.normalized(&kernel, s) {
                    out.push_str(&format!(
                        "{:<14} | {:<20} | {:>8.3} | {:>8.3} | {:>8.3}\n",
                        kernel,
                        s.to_string(),
                        t,
                        e,
                        edp
                    ));
                }
            }
        }
        out
    }

    /// Total gemsim references that were extrapolated (not simulated)
    /// across every completed pair — 0 unless the flow opted into
    /// [`MagpieInputs::epoch_skip`].
    pub fn total_extrapolated_accesses(&self) -> u64 {
        self.results
            .iter()
            .map(|r| r.activity.extrapolated_accesses)
            .sum()
    }

    /// Figure metadata as `key,value` CSV: grid shape, the simulation
    /// fidelity knobs, and the extrapolated-access count — written next to
    /// the figure CSVs so a consumer can tell an exact report from an
    /// epoch-skip-accelerated one without re-running the flow.
    pub fn metadata_csv(&self, figure: &str) -> String {
        let mut out = String::from("key,value\n");
        out.push_str(&format!("figure,{figure}\n"));
        out.push_str(&format!("kernels,{}\n", self.kernels().len()));
        out.push_str(&format!("scenarios,{}\n", self.areas.len()));
        out.push_str(&format!("results,{}\n", self.results.len()));
        out.push_str(&format!(
            "extrapolated_accesses,{}\n",
            self.total_extrapolated_accesses()
        ));
        out
    }

    /// The STT-vs-SOT mechanism comparison: for every kernel and every
    /// replacement shape present in *both* mechanisms, the normalised
    /// (time, energy, EDP) of the STT scenario next to its SOT twin.
    ///
    /// Empty when the report contains no SOT scenario — the comparison is
    /// only rendered for grids that asked for it.
    pub fn mechanism_comparison(&self) -> Vec<MechanismComparison> {
        let mut rows = Vec::new();
        for kernel in self.kernels() {
            for stt in [
                Scenario::LittleL2Stt,
                Scenario::BigL2Stt,
                Scenario::FullL2Stt,
            ] {
                let Some(sot) = stt.sot_counterpart() else {
                    continue;
                };
                let (Some(stt_m), Some(sot_m)) =
                    (self.normalized(&kernel, stt), self.normalized(&kernel, sot))
                else {
                    continue;
                };
                rows.push(MechanismComparison {
                    kernel: kernel.clone(),
                    stt,
                    sot,
                    stt_merits: stt_m,
                    sot_merits: sot_m,
                });
            }
        }
        rows
    }

    /// Renders [`mechanism_comparison`](Self::mechanism_comparison) as a
    /// table (merits normalised to Full-SRAM; the `EDP gain` column is
    /// STT-EDP / SOT-EDP, > 1 when SOT wins).
    pub fn mechanism_comparison_table(&self) -> String {
        let rows = self.mechanism_comparison();
        let mut out =
            String::from("== STT vs SOT: time / energy / EDP normalised to Full-SRAM ==\n");
        if rows.is_empty() {
            return out + "(no SOT scenarios in this report)\n";
        }
        out.push_str(&format!(
            "{:<14} | {:<20} | {:>23} | {:>23} | {:>8}\n",
            "kernel", "replacement", "STT time/energy/EDP", "SOT time/energy/EDP", "EDP gain"
        ));
        for r in &rows {
            let (st, se, sd) = r.stt_merits;
            let (ot, oe, od) = r.sot_merits;
            out.push_str(&format!(
                "{:<14} | {:<20} | {:>23} | {:>23} | {:>8.3}\n",
                r.kernel,
                r.replacement(),
                format!("{st:.3} / {se:.3} / {sd:.3}"),
                format!("{ot:.3} / {oe:.3} / {od:.3}"),
                r.edp_gain(),
            ));
        }
        out
    }

    /// Serialises the STT-vs-SOT comparison as CSV
    /// (`kernel,replacement,stt_time,stt_energy,stt_edp,sot_time,sot_energy,sot_edp,edp_gain`).
    pub fn mechanism_comparison_csv(&self) -> String {
        let mut out = String::from(
            "kernel,replacement,stt_time,stt_energy,stt_edp,sot_time,sot_energy,sot_edp,edp_gain\n",
        );
        for r in self.mechanism_comparison() {
            let (st, se, sd) = r.stt_merits;
            let (ot, oe, od) = r.sot_merits;
            out.push_str(&format!(
                "{},{},{st:.6},{se:.6},{sd:.6},{ot:.6},{oe:.6},{od:.6},{:.6}\n",
                r.kernel,
                r.replacement(),
                r.edp_gain(),
            ));
        }
        out
    }
}

/// One row of the STT-vs-SOT comparison: the same replacement shape under
/// both mechanisms, merits normalised to the Full-SRAM reference.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismComparison {
    /// Kernel name.
    pub kernel: String,
    /// The STT scenario of the pair.
    pub stt: Scenario,
    /// Its SOT twin.
    pub sot: Scenario,
    /// STT (time, energy, EDP) normalised to Full-SRAM.
    pub stt_merits: (f64, f64, f64),
    /// SOT (time, energy, EDP) normalised to Full-SRAM.
    pub sot_merits: (f64, f64, f64),
}

impl MechanismComparison {
    /// The mechanism-neutral replacement-shape label (`LITTLE-L2`,
    /// `big-L2`, `Full-L2`).
    pub fn replacement(&self) -> &'static str {
        match self.stt {
            Scenario::LittleL2Stt => "LITTLE-L2",
            Scenario::BigL2Stt => "big-L2",
            _ => "Full-L2",
        }
    }

    /// STT EDP over SOT EDP: > 1 when the SOT replacement wins.
    pub fn edp_gain(&self) -> f64 {
        self.stt_merits.2 / self.sot_merits.2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn flow_report() -> &'static (MagpieFlow, MagpieReport) {
        static CELL: OnceLock<(MagpieFlow, MagpieReport)> = OnceLock::new();
        CELL.get_or_init(|| {
            let flow = MagpieFlow::new(MagpieInputs {
                node: TechNode::N45,
                kernels: vec![Kernel::bodytrack(), Kernel::streamcluster()],
                scenarios: Scenario::ALL.to_vec(),
                seed: 7,
                sample_cap: 150_000,
                ..MagpieInputs::defaults()
            })
            .unwrap();
            let report = flow.run().unwrap();
            (flow, report)
        })
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(MagpieFlow::new(MagpieInputs {
            node: TechNode::N45,
            kernels: vec![],
            scenarios: Scenario::ALL.to_vec(),
            seed: 0,
            sample_cap: 1000,
            ..MagpieInputs::defaults()
        })
        .is_err());
    }

    #[test]
    fn validation_failures_name_the_defect() {
        let base = MagpieInputs {
            node: TechNode::N45,
            kernels: vec![Kernel::bodytrack()],
            scenarios: Scenario::ALL.to_vec(),
            seed: 0,
            sample_cap: 1000,
            ..MagpieInputs::defaults()
        };
        let reason = |inputs: MagpieInputs| match inputs.validate() {
            Err(MagpieError::InvalidInputs { reason }) => reason,
            other => panic!("expected InvalidInputs, got {other:?}"),
        };

        let mut inputs = base.clone();
        inputs.kernels.clear();
        assert_eq!(reason(inputs), "kernels must be non-empty");

        let mut inputs = base.clone();
        inputs.scenarios.clear();
        assert_eq!(reason(inputs), "scenarios must be non-empty");

        let mut inputs = base.clone();
        inputs.sample_cap = 0;
        assert_eq!(reason(inputs), "sample_cap must be non-zero");

        // A structurally broken kernel is caught per-kernel with its name.
        let mut inputs = base.clone();
        inputs.kernels[0].memory_ratio = 2.0;
        let r = reason(inputs);
        assert!(r.starts_with("kernel bodytrack:"), "{r}");
        assert!(r.contains("memory_ratio"), "{r}");

        // Out-of-range SOT channel parameters are rejected up front.
        let mut inputs = base.clone();
        inputs.mechanism = MechanismConfig::Sot(SotParams {
            spin_hall_angle: 0.0,
            ..SotParams::default()
        });
        let r = reason(inputs);
        assert!(r.starts_with("SOT mechanism:"), "{r}");

        // So is a broken epoch-skip configuration.
        let mut inputs = base.clone();
        inputs.epoch_skip = Some(EpochSkipConfig {
            window: 0,
            ..EpochSkipConfig::steady_default()
        });
        let r = reason(inputs);
        assert!(r.starts_with("epoch-skip:"), "{r}");

        assert!(base.validate().is_ok());
    }

    #[test]
    fn csv_exports_are_golden_stable() {
        // The figure CSVs must be byte-identical run to run, at any thread
        // count, warm or cold cache. The shared report is warm by now; the
        // serial rerun re-reduces through the cache, and the fresh-cache
        // flow recomputes every stage from scratch.
        let (flow, report) = flow_report();
        let fig11 = report.fig11_csv("bodytrack");
        let fig12 = report.fig12_csv();

        let serial = flow.run_with(&ParallelConfig::serial()).unwrap();
        assert_eq!(serial.fig11_csv("bodytrack"), fig11);
        assert_eq!(serial.fig12_csv(), fig12);

        let threaded = flow
            .run_with(&ParallelConfig::serial().with_threads(3))
            .unwrap();
        assert_eq!(threaded.fig11_csv("bodytrack"), fig11);
        assert_eq!(threaded.fig12_csv(), fig12);

        let cold_flow = MagpieFlow::new_with_cache(
            flow.inputs.clone(),
            std::sync::Arc::new(mss_pipe::PipeCache::memory_only()),
        )
        .unwrap();
        let cold = cold_flow.run().unwrap();
        assert_eq!(cold.fig11_csv("bodytrack"), fig11);
        assert_eq!(cold.fig12_csv(), fig12);
    }

    #[test]
    fn stt_l2_has_slower_writes_and_less_leakage() {
        let (flow, _) = flow_report();
        let sram = flow.system_config(Scenario::FullSram).unwrap();
        let stt = flow.system_config(Scenario::FullL2Stt).unwrap();
        let sram_big = &sram.clusters[0].l2;
        let stt_big = &stt.clusters[0].l2;
        assert!(stt_big.write_latency > 1.5 * sram_big.write_latency);
        assert!(stt_big.leakage_power < 0.3 * sram_big.leakage_power);
        // LITTLE iso-area replacement quadruples capacity.
        assert_eq!(
            stt.clusters[1].l2.capacity,
            4 * sram.clusters[1].l2.capacity
        );
        assert_eq!(stt_big.capacity, sram_big.capacity);
    }

    #[test]
    fn flow_is_thread_count_invariant() {
        let (flow, report) = flow_report();
        let serial = flow.run_with(&ParallelConfig::serial()).unwrap();
        assert_eq!(&serial, report);
        let four = flow
            .run_with(&ParallelConfig::serial().with_threads(4))
            .unwrap();
        assert_eq!(&four, report);
    }

    #[test]
    fn all_scenarios_produce_results() {
        let (_, report) = flow_report();
        assert_eq!(report.results.len(), 8);
        for s in Scenario::ALL {
            assert!(report.result("bodytrack", s).is_some());
        }
    }

    #[test]
    fn stt_scenarios_save_energy() {
        let (_, report) = flow_report();
        for kernel in ["bodytrack", "streamcluster"] {
            for s in [
                Scenario::LittleL2Stt,
                Scenario::BigL2Stt,
                Scenario::FullL2Stt,
            ] {
                let (_, e, _) = report.normalized(kernel, s).unwrap();
                assert!(e < 1.0, "{kernel}/{s}: energy ratio {e}");
            }
        }
    }

    #[test]
    fn little_stt_speeds_up_capacity_sensitive_kernel() {
        // bodytrack's working set fits the 4x larger STT L2 but not the
        // SRAM one — the paper's up-to-50% LITTLE speedup case.
        let (_, report) = flow_report();
        let (t, _, _) = report
            .normalized("bodytrack", Scenario::LittleL2Stt)
            .unwrap();
        assert!(t < 0.95, "time ratio {t}");
    }

    #[test]
    fn big_stt_slows_execution() {
        // Iso-capacity STT big L2 exposes the write latency: never faster,
        // and visibly slower for the streaming kernel.
        let (_, report) = flow_report();
        let (t, _, _) = report.normalized("bodytrack", Scenario::BigL2Stt).unwrap();
        assert!(t >= 1.0, "time ratio {t}");
        let (ts, _, _) = report
            .normalized("streamcluster", Scenario::BigL2Stt)
            .unwrap();
        assert!(ts >= 1.0, "time ratio {ts}");
    }

    #[test]
    fn tables_render() {
        let (_, report) = flow_report();
        let f11 = report.fig11_table("bodytrack");
        assert!(f11.contains("big.L2"));
        assert!(f11.contains("Full-SRAM"));
        let f12 = report.fig12_table();
        assert!(f12.contains("streamcluster"));
        assert!(f12.contains("LITTLE-L2-STT-MRAM"));
    }

    #[test]
    fn csv_exports_are_machine_readable() {
        let (_, report) = flow_report();
        let csv11 = report.fig11_csv("bodytrack");
        let mut lines = csv11.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("component,"));
        let cols = header.split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
            // Every value cell parses as a float.
            for cell in line.split(',').skip(1) {
                cell.parse::<f64>().unwrap();
            }
        }
        let csv12 = report.fig12_csv();
        assert!(csv12.starts_with("kernel,scenario,time,energy,edp"));
        // 2 kernels x 3 scenarios data rows.
        assert_eq!(csv12.lines().count(), 1 + 2 * 3);
        for line in csv12.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells.len(), 5);
            for cell in &cells[2..] {
                cell.parse::<f64>().unwrap();
            }
        }
    }

    #[test]
    fn area_accounting_follows_the_replacement_policy() {
        let (flow, report) = flow_report();
        let sram = flow.scenario_area(Scenario::FullSram).unwrap();
        let full = flow.scenario_area(Scenario::FullL2Stt).unwrap();
        // Iso-capacity big L2 in the denser technology shrinks a lot.
        assert!(full.l2_big < 0.5 * sram.l2_big);
        // Iso-area LITTLE L2 stays in the same area class (4x capacity at
        // ~3.7x density): within +/-30%.
        let ratio = full.l2_little / sram.l2_little;
        assert!((0.7..1.3).contains(&ratio), "LITTLE L2 area ratio {ratio}");
        // Total chip area never grows when adopting STT L2s.
        assert!(full.total() < sram.total() * 1.02);
        // Report carries the same records.
        assert_eq!(report.areas.len(), 4);
        assert!(report.area(Scenario::FullSram).is_some());
        let summary = report.fig10_summary("bodytrack");
        assert!(summary.contains("mm2"));
        assert!(summary.contains("Full-SRAM"));
    }

    #[test]
    fn missing_records_render_as_na_not_zero() {
        let mut report = flow_report().1.clone();
        // No area record: the Fig. 10 cell must say so instead of claiming
        // a 0.000 mm2 chip.
        report.areas.clear();
        let summary = report.fig10_summary("bodytrack");
        assert!(summary.contains("n/a"), "{summary}");
        assert!(!summary.contains("0.000 mm2"), "{summary}");
        // A component present in the reference scenario but absent from
        // another renders as n/a in that column (table and CSV).
        let victim = report
            .results
            .iter_mut()
            .find(|r| r.kernel == "bodytrack" && r.scenario != Scenario::FullSram)
            .unwrap();
        let dropped = victim.power.components.remove(0).name;
        let table = report.fig11_table("bodytrack");
        let row = table
            .lines()
            .find(|l| l.starts_with(&dropped))
            .expect("dropped component still has its reference row");
        assert!(row.contains("n/a"), "{row}");
        let csv = report.fig11_csv("bodytrack");
        let row = csv.lines().find(|l| l.starts_with(&dropped)).unwrap();
        assert!(row.contains(",n/a"), "{row}");
        assert!(!row.contains(",0.000000e0"), "{row}");
    }

    #[test]
    fn supervised_run_is_bit_identical_and_journals_every_pair() {
        let (flow, report) = flow_report();
        let dir = std::env::temp_dir().join(format!("mss-flow-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sweep.ndjson");
        let digest = flow.sweep_digest();

        let mut journal = SweepJournal::open(&path, &digest).unwrap();
        let partial = flow
            .run_supervised_journaled(
                &ParallelConfig::serial().with_threads(3),
                &SupervisorConfig::disabled(),
                &mut journal,
            )
            .unwrap();
        assert!(partial.is_complete());
        assert!(partial.failure_manifest().is_empty());
        assert_eq!(&partial.report, report);

        // Every pair left a durable done record that a resumed process sees.
        assert_eq!(journal.len(), report.results.len());
        let reopened = SweepJournal::open(&path, &digest).unwrap();
        assert_eq!(reopened.done().count(), report.results.len());
        for r in &report.results {
            assert!(reopened.is_done(&format!("{}/{}", r.scenario, r.kernel)));
        }
        // A different sweep configuration sees none of it.
        assert!(SweepJournal::open(&path, "0000000000000000")
            .unwrap()
            .is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The STT-vs-SOT comparison grid over the same kernels/seed/cap as
    /// [`flow_report`], sharing the process-global cache so the four STT
    /// scenarios are pure cache hits.
    fn sot_flow_report() -> &'static (MagpieFlow, MagpieReport) {
        static CELL: OnceLock<(MagpieFlow, MagpieReport)> = OnceLock::new();
        CELL.get_or_init(|| {
            let flow = MagpieFlow::new(MagpieInputs {
                node: TechNode::N45,
                kernels: vec![Kernel::bodytrack(), Kernel::streamcluster()],
                scenarios: Scenario::ALL_WITH_SOT.to_vec(),
                seed: 7,
                sample_cap: 150_000,
                ..MagpieInputs::defaults()
            })
            .unwrap();
            let report = flow.run().unwrap();
            (flow, report)
        })
    }

    #[test]
    fn sot_grid_leaves_stt_rows_byte_identical() {
        // Adding the SOT scenarios to the grid must not perturb a single
        // STT byte: every fig12 row of the pure-STT report reappears
        // verbatim in the extended report's CSV.
        let (_, stt_report) = flow_report();
        let (_, sot_report) = sot_flow_report();
        let extended = sot_report.fig12_csv();
        for line in stt_report.fig12_csv().lines() {
            assert!(
                extended.lines().any(|l| l == line),
                "STT row lost or perturbed by the SOT grid: {line}"
            );
        }
        // And the extended grid actually carries the SOT rows.
        assert!(extended.contains("big-L2-SOT-MRAM"));
        assert_eq!(sot_report.results.len(), 2 * 7);
    }

    #[test]
    fn sot_scenarios_write_faster_than_stt() {
        let (flow, report) = sot_flow_report();
        // The platform view: the SOT big L2 macro writes much faster than
        // the STT one (channel write, no damping limit).
        let stt = flow.system_config(Scenario::BigL2Stt).unwrap();
        let sot = flow.system_config(Scenario::BigL2Sot).unwrap();
        assert!(
            sot.clusters[0].l2.write_latency < 0.5 * stt.clusters[0].l2.write_latency,
            "SOT write {} vs STT write {}",
            sot.clusters[0].l2.write_latency,
            stt.clusters[0].l2.write_latency
        );
        // The system view: for the iso-capacity big-L2 replacement, SOT
        // never runs slower than its STT twin.
        for kernel in ["bodytrack", "streamcluster"] {
            let (t_stt, _, _) = report.normalized(kernel, Scenario::BigL2Stt).unwrap();
            let (t_sot, _, _) = report.normalized(kernel, Scenario::BigL2Sot).unwrap();
            assert!(t_sot <= t_stt, "{kernel}: SOT {t_sot} vs STT {t_stt}");
        }
        // Iso-area LITTLE replacement factors differ per mechanism.
        assert_eq!(
            flow.system_config(Scenario::LittleL2Sot).unwrap().clusters[1]
                .l2
                .capacity,
            (512 << 10) * ISO_AREA_CAPACITY_FACTOR_SOT
        );
    }

    #[test]
    fn mechanism_comparison_pairs_every_replacement() {
        let (_, report) = sot_flow_report();
        let rows = report.mechanism_comparison();
        // 2 kernels x 3 replacement shapes.
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.stt.sot_counterpart(), Some(r.sot));
            assert!(r.edp_gain().is_finite() && r.edp_gain() > 0.0);
        }
        let table = report.mechanism_comparison_table();
        assert!(table.contains("EDP gain"), "{table}");
        let csv = report.mechanism_comparison_csv();
        assert!(csv.starts_with("kernel,replacement,stt_time"));
        assert_eq!(csv.lines().count(), 1 + 6);
        // A pure-STT report renders an empty comparison, not a panic.
        let (_, stt_report) = flow_report();
        assert!(stt_report.mechanism_comparison().is_empty());
        assert_eq!(stt_report.mechanism_comparison_csv().lines().count(), 1);
    }

    #[test]
    fn sot_areas_follow_the_replacement_policy() {
        let (flow, _) = sot_flow_report();
        let sram = flow.scenario_area(Scenario::FullSram).unwrap();
        let stt = flow.scenario_area(Scenario::FullL2Stt).unwrap();
        let sot = flow.scenario_area(Scenario::FullL2Sot).unwrap();
        // SOT's three-terminal cell is far bigger than STT's 1T-1MTJ (the
        // channel write device) and lands back at roughly the 6T SRAM
        // footprint: the iso-capacity big L2 stays in the SRAM area class.
        assert!(sot.l2_big > 1.5 * stt.l2_big);
        let ratio = sot.l2_big / sram.l2_big;
        assert!((0.8..1.3).contains(&ratio), "big L2 area ratio {ratio}");
        // Chip-level area stays within a few percent of the SRAM reference
        // (capacity-neutral LITTLE, ~iso-area big).
        assert!(sot.total() < sram.total() * 1.05);
        assert!(sot.total() > stt.total());
    }

    #[test]
    fn sweep_digest_gates_the_new_knobs() {
        // Default mechanism + exact simulation hash exactly as the
        // pre-mechanism flow did: the digest is reproducible from the old
        // four-field shape.
        let (flow, _) = flow_report();
        let kernels = "bodytrack,streamcluster";
        let scenarios = Scenario::ALL.map(|s| s.to_string()).join(",");
        let old_shape = digest_of(&(
            "N45".to_string(),
            kernels.to_string(),
            scenarios,
            (7u64, 150_000u64),
        ));
        assert_eq!(flow.sweep_digest(), old_shape);

        // Setting either knob forks the digest.
        let mut inputs = flow.inputs.clone();
        inputs.mechanism = MechanismConfig::Sot(SotParams::default());
        let sot_flow = MagpieFlow::new(inputs).unwrap();
        assert_ne!(sot_flow.sweep_digest(), old_shape);

        let mut inputs = flow.inputs.clone();
        inputs.epoch_skip = Some(EpochSkipConfig::steady_default());
        let skip_flow = MagpieFlow::new(inputs).unwrap();
        assert_ne!(skip_flow.sweep_digest(), old_shape);
        assert_ne!(skip_flow.sweep_digest(), sot_flow.sweep_digest());
    }

    #[test]
    fn epoch_skip_knob_reaches_gemsim_and_the_metadata() {
        // Exact default: the shared report extrapolated nothing and says so.
        let (_, exact) = flow_report();
        assert_eq!(exact.total_extrapolated_accesses(), 0);
        assert!(exact
            .metadata_csv("fig12")
            .contains("extrapolated_accesses,0\n"));

        // Opt-in epoch skip on a steady streaming kernel: the knob reaches
        // the simulator and the skipped references surface in the metadata.
        let flow = MagpieFlow::new_with_cache(
            MagpieInputs {
                node: TechNode::N45,
                kernels: vec![Kernel::streamcluster()],
                scenarios: vec![Scenario::FullSram],
                seed: 7,
                sample_cap: 150_000,
                epoch_skip: Some(EpochSkipConfig {
                    window: 2048,
                    converge_windows: 3,
                    tolerance: 0.10,
                }),
                ..MagpieInputs::defaults()
            },
            Arc::new(PipeCache::memory_only()),
        )
        .unwrap();
        let report = flow.run().unwrap();
        let skipped = report.total_extrapolated_accesses();
        assert!(skipped > 0, "steady kernel extrapolated nothing");
        let meta = report.metadata_csv("fig12");
        assert!(
            meta.contains(&format!("extrapolated_accesses,{skipped}\n")),
            "{meta}"
        );
    }

    #[test]
    fn normalized_reference_is_unity() {
        let (_, report) = flow_report();
        let (t, e, edp) = report.normalized("bodytrack", Scenario::FullSram).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
        assert!((e - 1.0).abs() < 1e-12);
        assert!((edp - 1.0).abs() < 1e-12);
    }
}
