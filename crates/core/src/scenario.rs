//! The four evaluation scenarios of the paper's Fig. 11/12.
//!
//! *"big.LITTLE architecture where all cache memories are in SRAM (our
//! reference scenario, referred to as Full-SRAM); similar architecture but
//! the L2 cache of the LITTLE cluster is now in STT-MRAM
//! (LITTLE-L2-STT-MRAM), similar architecture but the L2 of the big cluster
//! is in STT-MRAM (big-L2-STT-MRAM), and similar architecture where L2
//! caches of both clusters are in STT-MRAM (Full-L2-STT-MRAM)."*
//!
//! Replacement sizing: the LITTLE cluster is area-constrained, so its
//! STT-MRAM L2 is sized **iso-area** (the ~4× density of the 1T-1MTJ cell
//! over 6T SRAM buys a 4× larger L2 — this is what lets the paper report up
//! to 50 % faster execution on the LITTLE cluster). The big cluster's 2 MiB
//! L2 is already capacity-generous, so its replacement is **iso-capacity**
//! (the area/energy saving is taken instead), which exposes the STT write
//! latency — the paper's observed slowdown.

/// Which caches are replaced with STT-MRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Reference: every cache is SRAM.
    FullSram,
    /// Only the LITTLE cluster's L2 is STT-MRAM (iso-area, 4× capacity).
    LittleL2Stt,
    /// Only the big cluster's L2 is STT-MRAM (iso-capacity).
    BigL2Stt,
    /// Both L2s are STT-MRAM.
    FullL2Stt,
}

impl Scenario {
    /// All four scenarios, reference first.
    pub const ALL: [Scenario; 4] = [
        Scenario::FullSram,
        Scenario::LittleL2Stt,
        Scenario::BigL2Stt,
        Scenario::FullL2Stt,
    ];

    /// True when the big cluster's L2 is STT-MRAM.
    pub fn big_l2_is_stt(self) -> bool {
        matches!(self, Scenario::BigL2Stt | Scenario::FullL2Stt)
    }

    /// True when the LITTLE cluster's L2 is STT-MRAM.
    pub fn little_l2_is_stt(self) -> bool {
        matches!(self, Scenario::LittleL2Stt | Scenario::FullL2Stt)
    }
}

impl mss_pipe::StableHash for Scenario {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_u8(match self {
            Scenario::FullSram => 0,
            Scenario::LittleL2Stt => 1,
            Scenario::BigL2Stt => 2,
            Scenario::FullL2Stt => 3,
        });
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scenario::FullSram => write!(f, "Full-SRAM"),
            Scenario::LittleL2Stt => write!(f, "LITTLE-L2-STT-MRAM"),
            Scenario::BigL2Stt => write!(f, "big-L2-STT-MRAM"),
            Scenario::FullL2Stt => write!(f, "Full-L2-STT-MRAM"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_match_scenarios() {
        assert!(!Scenario::FullSram.big_l2_is_stt());
        assert!(!Scenario::FullSram.little_l2_is_stt());
        assert!(Scenario::LittleL2Stt.little_l2_is_stt());
        assert!(!Scenario::LittleL2Stt.big_l2_is_stt());
        assert!(Scenario::BigL2Stt.big_l2_is_stt());
        assert!(Scenario::FullL2Stt.big_l2_is_stt() && Scenario::FullL2Stt.little_l2_is_stt());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(Scenario::FullSram.to_string(), "Full-SRAM");
        assert_eq!(Scenario::LittleL2Stt.to_string(), "LITTLE-L2-STT-MRAM");
    }
}
