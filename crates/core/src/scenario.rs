//! The four evaluation scenarios of the paper's Fig. 11/12.
//!
//! *"big.LITTLE architecture where all cache memories are in SRAM (our
//! reference scenario, referred to as Full-SRAM); similar architecture but
//! the L2 cache of the LITTLE cluster is now in STT-MRAM
//! (LITTLE-L2-STT-MRAM), similar architecture but the L2 of the big cluster
//! is in STT-MRAM (big-L2-STT-MRAM), and similar architecture where L2
//! caches of both clusters are in STT-MRAM (Full-L2-STT-MRAM)."*
//!
//! Replacement sizing: the LITTLE cluster is area-constrained, so its
//! STT-MRAM L2 is sized **iso-area** (the ~4× density of the 1T-1MTJ cell
//! over 6T SRAM buys a 4× larger L2 — this is what lets the paper report up
//! to 50 % faster execution on the LITTLE cluster). The big cluster's 2 MiB
//! L2 is already capacity-generous, so its replacement is **iso-capacity**
//! (the area/energy saving is taken instead), which exposes the STT write
//! latency — the paper's observed slowdown.
//!
//! On top of the paper's grid, each STT replacement has a **SOT twin**
//! ([`Scenario::SOT`]) backed by the three-terminal SOT/SHE cell: same
//! replacement shape, but the write goes through the heavy-metal channel
//! (no damping limit, so far lower write latency/energy) at the cost of a
//! cell that lands back at roughly the 6T SRAM footprint — the iso-area
//! LITTLE replacement is capacity-neutral instead of 4×. The SOT variants
//! never appear in [`Scenario::ALL`], so every historic digest and golden
//! stays stable.

/// The memory technology backing one L2 macro in a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheTech {
    /// 6T SRAM.
    Sram,
    /// Two-terminal 1T-1MTJ STT-MRAM.
    Stt,
    /// Three-terminal SOT/SHE-MRAM (separate read and write paths).
    Sot,
}

/// Which caches are replaced with MRAM, and with which switching mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Reference: every cache is SRAM.
    FullSram,
    /// Only the LITTLE cluster's L2 is STT-MRAM (iso-area, 4× capacity).
    LittleL2Stt,
    /// Only the big cluster's L2 is STT-MRAM (iso-capacity).
    BigL2Stt,
    /// Both L2s are STT-MRAM.
    FullL2Stt,
    /// Only the LITTLE cluster's L2 is SOT-MRAM (iso-area; the
    /// three-terminal cell sits at ~the SRAM footprint, so the replacement
    /// is capacity-neutral — the win is write speed, not capacity).
    LittleL2Sot,
    /// Only the big cluster's L2 is SOT-MRAM (iso-capacity).
    BigL2Sot,
    /// Both L2s are SOT-MRAM.
    FullL2Sot,
}

impl Scenario {
    /// The paper's four scenarios, reference first. Deliberately does NOT
    /// include the SOT variants, so every historic grid, figure and cache
    /// digest built from `ALL` is untouched by the mechanism refactor.
    pub const ALL: [Scenario; 4] = [
        Scenario::FullSram,
        Scenario::LittleL2Stt,
        Scenario::BigL2Stt,
        Scenario::FullL2Stt,
    ];

    /// The three SOT replacement scenarios, mirroring the STT triple.
    pub const SOT: [Scenario; 3] = [
        Scenario::LittleL2Sot,
        Scenario::BigL2Sot,
        Scenario::FullL2Sot,
    ];

    /// The full STT-vs-SOT comparison grid: the paper's four scenarios
    /// followed by the three SOT twins.
    pub const ALL_WITH_SOT: [Scenario; 7] = [
        Scenario::FullSram,
        Scenario::LittleL2Stt,
        Scenario::BigL2Stt,
        Scenario::FullL2Stt,
        Scenario::LittleL2Sot,
        Scenario::BigL2Sot,
        Scenario::FullL2Sot,
    ];

    /// True when the big cluster's L2 is STT-MRAM.
    pub fn big_l2_is_stt(self) -> bool {
        matches!(self, Scenario::BigL2Stt | Scenario::FullL2Stt)
    }

    /// True when the LITTLE cluster's L2 is STT-MRAM.
    pub fn little_l2_is_stt(self) -> bool {
        matches!(self, Scenario::LittleL2Stt | Scenario::FullL2Stt)
    }

    /// The technology backing the big cluster's L2.
    pub fn big_l2_tech(self) -> CacheTech {
        match self {
            Scenario::BigL2Stt | Scenario::FullL2Stt => CacheTech::Stt,
            Scenario::BigL2Sot | Scenario::FullL2Sot => CacheTech::Sot,
            _ => CacheTech::Sram,
        }
    }

    /// The technology backing the LITTLE cluster's L2.
    pub fn little_l2_tech(self) -> CacheTech {
        match self {
            Scenario::LittleL2Stt | Scenario::FullL2Stt => CacheTech::Stt,
            Scenario::LittleL2Sot | Scenario::FullL2Sot => CacheTech::Sot,
            _ => CacheTech::Sram,
        }
    }

    /// True when any cache in this scenario is SOT-MRAM (the flow only
    /// characterises the three-terminal cell when this is set somewhere in
    /// its grid).
    pub fn uses_sot(self) -> bool {
        self.big_l2_tech() == CacheTech::Sot || self.little_l2_tech() == CacheTech::Sot
    }

    /// The SOT twin of an STT scenario (`None` for the reference and for
    /// scenarios that are already SOT) — the pairing the STT-vs-SOT
    /// comparison figures walk.
    pub fn sot_counterpart(self) -> Option<Scenario> {
        match self {
            Scenario::LittleL2Stt => Some(Scenario::LittleL2Sot),
            Scenario::BigL2Stt => Some(Scenario::BigL2Sot),
            Scenario::FullL2Stt => Some(Scenario::FullL2Sot),
            _ => None,
        }
    }
}

impl mss_pipe::StableHash for Scenario {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_u8(match self {
            Scenario::FullSram => 0,
            Scenario::LittleL2Stt => 1,
            Scenario::BigL2Stt => 2,
            Scenario::FullL2Stt => 3,
            Scenario::LittleL2Sot => 4,
            Scenario::BigL2Sot => 5,
            Scenario::FullL2Sot => 6,
        });
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scenario::FullSram => write!(f, "Full-SRAM"),
            Scenario::LittleL2Stt => write!(f, "LITTLE-L2-STT-MRAM"),
            Scenario::BigL2Stt => write!(f, "big-L2-STT-MRAM"),
            Scenario::FullL2Stt => write!(f, "Full-L2-STT-MRAM"),
            Scenario::LittleL2Sot => write!(f, "LITTLE-L2-SOT-MRAM"),
            Scenario::BigL2Sot => write!(f, "big-L2-SOT-MRAM"),
            Scenario::FullL2Sot => write!(f, "Full-L2-SOT-MRAM"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_match_scenarios() {
        assert!(!Scenario::FullSram.big_l2_is_stt());
        assert!(!Scenario::FullSram.little_l2_is_stt());
        assert!(Scenario::LittleL2Stt.little_l2_is_stt());
        assert!(!Scenario::LittleL2Stt.big_l2_is_stt());
        assert!(Scenario::BigL2Stt.big_l2_is_stt());
        assert!(Scenario::FullL2Stt.big_l2_is_stt() && Scenario::FullL2Stt.little_l2_is_stt());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(Scenario::FullSram.to_string(), "Full-SRAM");
        assert_eq!(Scenario::LittleL2Stt.to_string(), "LITTLE-L2-STT-MRAM");
        assert_eq!(Scenario::BigL2Sot.to_string(), "big-L2-SOT-MRAM");
    }

    #[test]
    fn sot_scenarios_mirror_the_stt_triple() {
        // The historic grid is untouched by the SOT extension.
        assert_eq!(Scenario::ALL.len(), 4);
        assert!(Scenario::ALL.iter().all(|s| !s.uses_sot()));
        assert_eq!(Scenario::ALL_WITH_SOT[..4], Scenario::ALL);
        assert_eq!(Scenario::ALL_WITH_SOT[4..], Scenario::SOT);
        for s in Scenario::SOT {
            assert!(s.uses_sot());
            assert!(!s.big_l2_is_stt() && !s.little_l2_is_stt());
        }
        // Each STT replacement has exactly one SOT twin with the same
        // replacement shape.
        for stt in [
            Scenario::LittleL2Stt,
            Scenario::BigL2Stt,
            Scenario::FullL2Stt,
        ] {
            let sot = stt.sot_counterpart().unwrap();
            assert_eq!(
                stt.big_l2_tech() == CacheTech::Stt,
                sot.big_l2_tech() == CacheTech::Sot
            );
            assert_eq!(
                stt.little_l2_tech() == CacheTech::Stt,
                sot.little_l2_tech() == CacheTech::Sot
            );
        }
        assert_eq!(Scenario::FullSram.sot_counterpart(), None);
        assert_eq!(Scenario::FullL2Sot.sot_counterpart(), None);
    }
}
