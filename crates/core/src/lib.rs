//! MAGPIE — the cross-layer hybrid design-exploration flow on the MSS
//! technology (the paper's Sec. IV, Fig. 10).
//!
//! The flow chains every layer of this workspace exactly as the paper's
//! Fig. 10 describes:
//!
//! 1. **Circuit level** — `mss-pdk` characterises the 1T-1MTJ cell with
//!    `mss-spice` (template → transient → MDL → cell configuration file),
//! 2. **Memory level** — `mss-nvsim` turns the cell configuration plus an
//!    array organisation into latency/energy/area/leakage for each cache,
//! 3. **System level** — `mss-gemsim` executes Parsec-like kernels on a
//!    big.LITTLE platform whose L2s are SRAM or STT-MRAM per scenario, and
//!    `mss-mcpat` converts the activity into component energies.
//!
//! The four scenarios of Fig. 11/12 are [`scenario::Scenario`]; the
//! top-level driver is [`flow::MagpieFlow`].
//!
//! # Example
//!
//! ```no_run
//! use mss_core::flow::{MagpieFlow, MagpieInputs};
//! use mss_core::scenario::Scenario;
//! use mss_gemsim::workload::Kernel;
//! use mss_pdk::tech::TechNode;
//!
//! # fn main() -> Result<(), mss_core::MagpieError> {
//! let flow = MagpieFlow::new(MagpieInputs {
//!     node: TechNode::N45,
//!     kernels: vec![Kernel::bodytrack()],
//!     scenarios: Scenario::ALL.to_vec(),
//!     seed: 42,
//!     sample_cap: 50_000,
//!     // STT mechanism, exact simulation — the paper defaults.
//!     ..MagpieInputs::defaults()
//! })?;
//! let report = flow.run()?;
//! println!("{}", report.fig12_table());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod error;
pub mod flow;
pub mod scenario;

pub use error::MagpieError;
