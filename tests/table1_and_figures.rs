//! Integration: the VAET-STT analyses reproduce the paper's Table 1 and
//! Fig. 7–9 qualitative shapes on both technology nodes.

use great_mss::pdk::tech::TechNode;
use great_mss::vaet::context::VaetContext;
use great_mss::vaet::ecc::figure8;
use great_mss::vaet::margins::figure7;
use great_mss::vaet::montecarlo::{run, MonteCarloOptions};
use great_mss::vaet::read::figure9;
use great_mss::vaet::report::VaetReport;
use std::sync::OnceLock;

fn ctx(node: TechNode) -> &'static VaetContext {
    static C45: OnceLock<VaetContext> = OnceLock::new();
    static C65: OnceLock<VaetContext> = OnceLock::new();
    match node {
        TechNode::N45 => C45.get_or_init(|| VaetContext::standard(node).expect("ctx45")),
        TechNode::N65 => C65.get_or_init(|| VaetContext::standard(node).expect("ctx65")),
    }
}

fn mc(node: TechNode) -> VaetReport {
    run(
        ctx(node),
        &MonteCarloOptions {
            samples: 300,
            seed: 0x7AB1E,
            word_bits: Some(256),
        },
    )
    .expect("monte carlo")
}

#[test]
fn table1_mu_exceeds_nominal_for_writes() {
    for node in TechNode::ALL {
        let r = mc(node);
        assert!(
            r.write_latency.mean > 1.5 * r.nominal_write_latency,
            "{node}: mu {} vs nominal {}",
            r.write_latency.mean,
            r.nominal_write_latency
        );
        assert!(r.write_energy.mean > r.nominal_write_energy);
        assert!(r.read_latency.mean > r.nominal_read_latency);
    }
}

#[test]
fn table1_smaller_node_has_larger_write_sigma() {
    let r45 = mc(TechNode::N45);
    let r65 = mc(TechNode::N65);
    assert!(
        r45.write_latency.std_dev > r65.write_latency.std_dev,
        "45nm sigma {} vs 65nm sigma {}",
        r45.write_latency.std_dev,
        r65.write_latency.std_dev
    );
}

#[test]
fn table1_reads_are_faster_and_cheaper_than_writes() {
    for node in TechNode::ALL {
        let r = mc(node);
        assert!(r.read_latency.mean < 0.5 * r.write_latency.mean);
        assert!(r.read_energy.mean < r.write_energy.mean);
        assert!(r.read_latency.std_dev < r.write_latency.std_dev);
    }
}

#[test]
fn table1_65nm_write_energy_exceeds_45nm() {
    // Bigger wires + higher supply at the older node (paper: 272.8 vs 159 pJ
    // nominal).
    let r45 = mc(TechNode::N45);
    let r65 = mc(TechNode::N65);
    assert!(r65.nominal_write_energy > r45.nominal_write_energy);
    assert!(r65.write_energy.mean > r45.write_energy.mean);
}

#[test]
fn fig7_lower_error_rates_need_higher_margins() {
    let (write, read) = figure7(ctx(TechNode::N45), &[1e-5, 1e-10, 1e-15]).expect("fig7");
    assert!(write.windows(2).all(|w| w[1].latency > w[0].latency));
    assert!(read.windows(2).all(|w| w[1].latency >= w[0].latency));
    // Write margins dominate read margins throughout.
    for (w, r) in write.iter().zip(&read) {
        assert!(w.latency > 3.0 * r.latency);
    }
    // The margined write latency far exceeds the nominal one.
    assert!(write[0].latency > 2.0 * ctx(TechNode::N45).nominal.write_latency);
}

#[test]
fn fig8_first_corrected_bit_gives_drastic_gain() {
    let points = figure8(ctx(TechNode::N45), 1e-18, 4).expect("fig8");
    let l: Vec<f64> = points.iter().map(|p| p.write_latency).collect();
    assert!(l[1] < 0.75 * l[0], "t=0 {} -> t=1 {}", l[0], l[1]);
    // Diminishing returns beyond the first bit.
    let g1 = l[0] - l[1];
    for w in l.windows(2).skip(1) {
        assert!(w[0] - w[1] < g1);
    }
    // Monotone non-increasing latency with ECC strength.
    assert!(l.windows(2).all(|w| w[1] <= w[0] + 1e-12));
}

#[test]
fn fig9_disturb_grows_while_rer_falls() {
    let periods: Vec<f64> = (1..=10).map(|k| k as f64 * 1e-9).collect();
    let points = figure9(ctx(TechNode::N45), &periods);
    for w in points.windows(2) {
        assert!(w[1].disturb_probability > w[0].disturb_probability);
        assert!(w[1].read_error_rate <= w[0].read_error_rate);
    }
    // Ten reads of 10 ns each keep the disturb probability usable.
    assert!(points.last().unwrap().disturb_probability < 1e-3);
}

#[test]
fn table1_renders_paper_layout() {
    let table = mc(TechNode::N45).to_table();
    for needle in [
        "write latency",
        "write energy",
        "read latency",
        "read energy",
        "mu",
        "sigma",
    ] {
        assert!(table.contains(needle), "missing '{needle}' in:\n{table}");
    }
}
