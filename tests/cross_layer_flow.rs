//! Integration: the full MAGPIE cross-layer flow (PDK → SPICE → NVSim →
//! gemsim → McPAT) is deterministic and reproduces the paper's Fig. 11/12
//! qualitative shapes.

use great_mss::core::flow::{MagpieFlow, MagpieInputs};
use great_mss::core::scenario::Scenario;
use great_mss::gemsim::workload::Kernel;
use great_mss::pdk::tech::TechNode;
use std::sync::OnceLock;

fn report() -> &'static great_mss::core::flow::MagpieReport {
    static CELL: OnceLock<great_mss::core::flow::MagpieReport> = OnceLock::new();
    CELL.get_or_init(|| {
        MagpieFlow::new(MagpieInputs {
            node: TechNode::N45,
            kernels: vec![Kernel::bodytrack(), Kernel::streamcluster()],
            scenarios: Scenario::ALL.to_vec(),
            seed: 2024,
            sample_cap: 150_000,
            ..MagpieInputs::defaults()
        })
        .expect("flow setup")
        .run()
        .expect("flow run")
    })
}

#[test]
fn flow_is_deterministic() {
    let flow = MagpieFlow::new(MagpieInputs {
        node: TechNode::N45,
        kernels: vec![Kernel::swaptions()],
        scenarios: vec![Scenario::FullSram],
        seed: 7,
        sample_cap: 20_000,
        ..MagpieInputs::defaults()
    })
    .expect("setup");
    let a = flow.run().expect("run a");
    let b = flow.run().expect("run b");
    assert_eq!(a.results[0].runtime, b.results[0].runtime);
    assert_eq!(a.results[0].energy, b.results[0].energy);
}

#[test]
fn every_scenario_and_kernel_evaluated() {
    let r = report();
    assert_eq!(r.results.len(), 8);
    assert_eq!(r.kernels().len(), 2);
}

#[test]
fn fig11_shape_stt_l2_cuts_l2_energy() {
    // The STT L2's (mostly leakage) energy collapses vs the SRAM L2.
    let r = report();
    let sram = r
        .result("bodytrack", Scenario::FullSram)
        .and_then(|x| x.power.component("big.L2"))
        .expect("sram big.L2");
    let stt = r
        .result("bodytrack", Scenario::BigL2Stt)
        .and_then(|x| x.power.component("big.L2"))
        .expect("stt big.L2");
    assert!(
        stt.total() < 0.5 * sram.total(),
        "stt {} vs sram {}",
        stt.total(),
        sram.total()
    );
}

#[test]
fn fig12_shape_energy_improves_in_every_stt_scenario() {
    let r = report();
    for kernel in r.kernels() {
        for s in [
            Scenario::LittleL2Stt,
            Scenario::BigL2Stt,
            Scenario::FullL2Stt,
        ] {
            let (_, e, _) = r.normalized(&kernel, s).expect("result");
            assert!(e < 1.0, "{kernel}/{s}: energy ratio {e}");
        }
    }
}

#[test]
fn fig12_shape_little_speedup_and_big_slowdown() {
    let r = report();
    // Capacity-sensitive kernel: iso-area LITTLE STT L2 is faster. (The
    // margin tightened when L1 victim write-backs started landing on their
    // real L2 lines: the earlier address-aliasing hack polluted the L2 and
    // overstated how much extra capacity helps.)
    let (t_little, _, _) = r
        .normalized("bodytrack", Scenario::LittleL2Stt)
        .expect("result");
    assert!(t_little < 0.93, "LITTLE speedup ratio {t_little}");
    // Iso-capacity big STT L2 never speeds anything up.
    for kernel in r.kernels() {
        let (t_big, _, _) = r.normalized(&kernel, Scenario::BigL2Stt).expect("result");
        assert!(t_big >= 1.0 - 1e-9, "{kernel}: big ratio {t_big}");
    }
}

#[test]
fn fig12_shape_edp_compensates_slowdowns() {
    // "The penalty observed on the execution time ... is compensated by the
    // enabled energy savings": EDP <= 1.0 in every STT scenario.
    let r = report();
    for kernel in r.kernels() {
        for s in [
            Scenario::LittleL2Stt,
            Scenario::BigL2Stt,
            Scenario::FullL2Stt,
        ] {
            let (_, _, edp) = r.normalized(&kernel, s).expect("result");
            assert!(edp < 1.02, "{kernel}/{s}: EDP ratio {edp}");
        }
    }
}

#[test]
fn activity_counters_are_consistent() {
    let r = report();
    for res in &r.results {
        for cache in &res.activity.caches {
            let s = &cache.stats;
            assert_eq!(s.hits() + s.misses(), s.accesses());
        }
        assert!(res.activity.runtime_seconds > 0.0);
        assert!(res.energy > 0.0);
        assert!((res.edp - res.energy * res.runtime).abs() < 1e-12 * res.edp);
    }
}
