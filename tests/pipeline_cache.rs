//! Integration: the content-addressed stage pipeline (`mss-pipe`) makes
//! sweeps incremental without changing a single output bit.
//!
//! The acceptance regression here is the paper's Fig. 12 node sweep: once a
//! cache is warm, re-running the sweep (fresh `MagpieFlow`s, same cache)
//! must skip every `CharacterizeCells` and `EstimateArray` recomputation —
//! verified both through [`PipeCache::stats`] and the mirrored `mss-obs`
//! counters — while producing a byte-identical report.
//!
//! Tests share global observability counters, so they serialize on [`LOCK`].

use std::sync::{Arc, Mutex};

use great_mss::core::flow::{MagpieFlow, MagpieInputs, MagpieReport};
use great_mss::core::scenario::Scenario;
use great_mss::gemsim::workload::Kernel;
use great_mss::obs;
use great_mss::pdk::tech::TechNode;
use great_mss::pipe::{PipeCache, Stage};

static LOCK: Mutex<()> = Mutex::new(());

fn sweep_inputs(node: TechNode) -> MagpieInputs {
    MagpieInputs {
        node,
        kernels: vec![Kernel::swaptions()],
        scenarios: vec![Scenario::FullSram, Scenario::FullL2Stt],
        seed: 11,
        sample_cap: 20_000,
        ..MagpieInputs::defaults()
    }
}

fn run_sweep(cache: &Arc<PipeCache>) -> Vec<MagpieReport> {
    TechNode::ALL
        .into_iter()
        .map(|node| {
            MagpieFlow::new_with_cache(sweep_inputs(node), Arc::clone(cache))
                .expect("flow setup")
                .run()
                .expect("flow run")
        })
        .collect()
}

#[test]
fn warm_node_sweep_skips_upstream_recomputation() {
    let _serial = LOCK.lock().unwrap();
    obs::init_with_mode(obs::Mode::Metrics);
    assert!(obs::enabled(), "metrics must be on for counter assertions");

    let cache = Arc::new(PipeCache::memory_only());
    let cold_reports = run_sweep(&cache);

    let char_cold = cache.stats(Stage::CharacterizeCells);
    let est_cold = cache.stats(Stage::EstimateArray);
    let sim_cold = cache.stats(Stage::SimulateKernel);
    let pow_cold = cache.stats(Stage::McpatAccount);
    assert_eq!(
        char_cold.misses,
        TechNode::ALL.len() as u64,
        "one characterisation per node on the cold sweep"
    );
    assert!(est_cold.misses > 0, "cold sweep estimates array macros");
    assert!(sim_cold.misses > 0 && pow_cold.misses > 0);

    let obs_char_hits = obs::counter("pipe.characterize_cells.hit");
    let obs_est_hits = obs::counter("pipe.estimate_array.hit");

    // Warm sweep: brand-new flows over the same cache.
    let warm_reports = run_sweep(&cache);
    for (warm, cold) in warm_reports.iter().zip(&cold_reports) {
        assert_eq!(warm, cold, "warm report must be bit-identical");
        assert_eq!(warm.fig12_csv(), cold.fig12_csv());
        assert_eq!(warm.fig11_csv("swaptions"), cold.fig11_csv("swaptions"));
    }

    let char_warm = cache.stats(Stage::CharacterizeCells);
    let est_warm = cache.stats(Stage::EstimateArray);
    let sim_warm = cache.stats(Stage::SimulateKernel);
    let pow_warm = cache.stats(Stage::McpatAccount);
    assert_eq!(
        char_warm.misses, char_cold.misses,
        "warm sweep must not re-characterise"
    );
    assert_eq!(
        est_warm.misses, est_cold.misses,
        "warm sweep must not re-estimate"
    );
    assert_eq!(
        sim_warm.misses, sim_cold.misses,
        "warm sweep must not re-simulate"
    );
    assert_eq!(
        pow_warm.misses, pow_cold.misses,
        "warm sweep must not re-account"
    );
    assert!(char_warm.hits > char_cold.hits);
    assert!(est_warm.hits > est_cold.hits);

    // The same evidence flows into the shared observability registry.
    assert!(obs::counter("pipe.characterize_cells.hit") > obs_char_hits);
    assert!(obs::counter("pipe.estimate_array.hit") > obs_est_hits);
}

#[test]
fn disk_tier_carries_artifacts_across_cache_instances() {
    let _serial = LOCK.lock().unwrap();
    obs::init_with_mode(obs::Mode::Metrics);

    let dir = std::env::temp_dir().join(format!("mss-pipe-itest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold_cache = Arc::new(PipeCache::with_disk(&dir));
    let cold = MagpieFlow::new_with_cache(sweep_inputs(TechNode::N45), Arc::clone(&cold_cache))
        .expect("cold setup")
        .run()
        .expect("cold run");
    assert!(
        cold_cache.stats(Stage::CharacterizeCells).stores > 0,
        "cold run persists the cell library"
    );
    assert!(cold_cache.stats(Stage::EstimateArray).stores > 0);

    // A fresh cache instance (empty memory tier) over the same directory:
    // artifact stages load from disk instead of recomputing.
    let warm_cache = Arc::new(PipeCache::with_disk(&dir));
    let warm = MagpieFlow::new_with_cache(sweep_inputs(TechNode::N45), Arc::clone(&warm_cache))
        .expect("warm setup")
        .run()
        .expect("warm run");
    assert_eq!(warm, cold, "disk-warmed report must be bit-identical");
    assert_eq!(warm.fig12_csv(), cold.fig12_csv());

    let char_stats = warm_cache.stats(Stage::CharacterizeCells);
    let est_stats = warm_cache.stats(Stage::EstimateArray);
    assert_eq!(char_stats.misses, 0, "cell library must come from disk");
    assert!(char_stats.disk_hits >= 1);
    assert_eq!(est_stats.misses, 0, "array metrics must come from disk");
    assert!(est_stats.disk_hits >= 1);
    assert_eq!(char_stats.load_failures, 0);
    assert_eq!(est_stats.load_failures, 0);

    let _ = std::fs::remove_dir_all(&dir);
}
