//! Integration: the circuit-level template → simulate → measure → parse
//! loop across crates (`mss-pdk` templates through `mss-spice`).

use great_mss::mtj::MssStack;
use great_mss::pdk::cells::{
    bitcell_write_deck, nvff_backup_deck, pcsa_read_deck, write_driver_deck, WriteDirection,
};
use great_mss::pdk::charlib::{characterize, CellLibrary};
use great_mss::pdk::tech::{TechNode, TechParams};
use great_mss::spice::analysis::{Transient, TransientOptions};
use great_mss::spice::mdl::Report;
use mss_mtj::resistance::MtjState;

fn run(deck: &great_mss::spice::parser::Deck) -> great_mss::spice::analysis::TransientResult {
    let (dt, stop) = deck.tran.expect(".tran present");
    Transient::new(&deck.netlist)
        .expect("transient setup")
        .run(&TransientOptions::new(dt, stop))
        .expect("transient run")
}

#[test]
fn bitcell_write_switches_in_both_directions() {
    let tech = TechParams::node(TechNode::N45);
    let stack = MssStack::builder().build().expect("stack");
    for dir in [WriteDirection::ToParallel, WriteDirection::ToAntiparallel] {
        let deck =
            bitcell_write_deck(&tech, &stack, dir, 8.0 * tech.feature, 12e-9, 5e-15).expect("deck");
        let res = run(&deck);
        assert_eq!(res.events().len(), 1, "{dir:?} must flip exactly once");
    }
}

#[test]
fn pcsa_senses_both_states_at_both_nodes() {
    let stack = MssStack::builder().build().expect("stack");
    let r_ref = (stack.resistance_parallel() * stack.resistance_antiparallel()).sqrt();
    for node in TechNode::ALL {
        let tech = TechParams::node(node);
        for state in [MtjState::Parallel, MtjState::Antiparallel] {
            let deck = pcsa_read_deck(&tech, &stack, state, r_ref, 2e-9).expect("deck");
            let res = run(&deck);
            let out = *res.node_voltage("out").expect("out").last().unwrap();
            let outb = *res.node_voltage("outb").expect("outb").last().unwrap();
            assert!(
                (out - outb).abs() > 0.7 * tech.vdd,
                "{node}/{state:?}: latch unresolved (out {out:.2}, outb {outb:.2})"
            );
        }
    }
}

#[test]
fn nvff_two_phase_backup_flips_both_junctions() {
    let tech = TechParams::node(TechNode::N45);
    let stack = MssStack::builder().build().expect("stack");
    for q in [true, false] {
        let deck = nvff_backup_deck(&tech, &stack, q, 24.0 * tech.feature, 15e-9).expect("deck");
        let res = run(&deck);
        assert_eq!(res.events().len(), 2, "q={q}: both junctions must flip");
    }
}

#[test]
fn write_driver_drives_realistic_bitline() {
    let tech = TechParams::node(TechNode::N45);
    let deck = write_driver_deck(&tech, 100e-15, 5e-9).expect("deck");
    let res = run(&deck);
    let bl = res.node_voltage("bl").expect("bl");
    let max = bl.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(max > 0.9 * tech.vdd);
}

#[test]
fn characterisation_round_trips_through_the_report_file() {
    let stack = MssStack::builder().build().expect("stack");
    let lib = characterize(TechNode::N45, &stack).expect("characterise");
    let text = lib.to_report().to_text();
    let parsed = CellLibrary::from_report(&Report::parse(&text).expect("parse")).expect("decode");
    assert_eq!(parsed.node, lib.node);
    assert!((parsed.write.latency - lib.write.latency).abs() < 1e-20);
    assert!((parsed.cell_area - lib.cell_area).abs() < 1e-25);
}

#[test]
fn characterised_write_latency_matches_analytic_model() {
    // The SPICE-level flip time and the behavioural compact model must agree
    // on the cell switching time scale (compact-model consistency).
    let stack = MssStack::builder().build().expect("stack");
    let lib = characterize(TechNode::N45, &stack).expect("characterise");
    let sw = great_mss::mtj::switching::SwitchingModel::new(&stack);
    let analytic = sw
        .mean_switching_time(lib.write.current)
        .expect("supercritical write");
    let ratio = lib.write.latency / analytic;
    assert!(
        (0.5..2.0).contains(&ratio),
        "SPICE {} vs analytic {} (ratio {ratio:.2})",
        lib.write.latency,
        analytic
    );
}
