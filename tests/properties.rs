//! Property-based tests on cross-crate invariants (proptest).

use great_mss::mtj::llg::{LlgOptions, LlgSimulator};
use great_mss::mtj::switching::SwitchingModel;
use great_mss::mtj::{MssDevice, MssStack};
use great_mss::spice::analysis::dc_operating_point;
use great_mss::spice::netlist::Netlist;
use great_mss::spice::waveform::Waveform;
use great_mss::units::Vec3;
use great_mss::nvsim::buffer::evaluate_buffer;
use great_mss::units::complex::Complex;
use great_mss::vaet::ecc::EccScheme;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// WER is a probability, monotone non-increasing in pulse width and
    /// current, for any physical stack geometry.
    #[test]
    fn wer_is_monotone_probability(
        diameter_nm in 25.0f64..70.0,
        i_rel in 1.2f64..4.0,
        t_ns in 0.5f64..40.0,
    ) {
        let stack = MssStack::builder().diameter(diameter_nm * 1e-9).build().unwrap();
        let sw = SwitchingModel::new(&stack);
        let i = i_rel * sw.critical_current();
        let t = t_ns * 1e-9;
        let wer = sw.write_error_rate(t, i);
        prop_assert!((0.0..=1.0).contains(&wer));
        prop_assert!(sw.write_error_rate(1.5 * t, i) <= wer + 1e-15);
        prop_assert!(sw.write_error_rate(t, 1.2 * i) <= wer + 1e-15);
    }

    /// Inverting the WER for a pulse width round-trips.
    #[test]
    fn pulse_for_wer_round_trips(
        diameter_nm in 30.0f64..60.0,
        i_rel in 1.5f64..3.5,
        log_wer in -18.0f64..-3.0,
    ) {
        let stack = MssStack::builder().diameter(diameter_nm * 1e-9).build().unwrap();
        let sw = SwitchingModel::new(&stack);
        let i = i_rel * sw.critical_current();
        let wer = 10f64.powf(log_wer);
        let t = sw.pulse_for_wer(wer, i).unwrap();
        let back = sw.write_error_rate(t, i);
        prop_assert!((back.ln() - wer.ln()).abs() < 1e-6 * wer.ln().abs());
    }

    /// The LLG integrator preserves |m| = 1 from any starting orientation,
    /// with or without spin torque.
    #[test]
    fn llg_preserves_unit_norm(
        theta in 0.05f64..3.0,
        phi in -3.1f64..3.1,
        i_rel in -3.0f64..3.0,
    ) {
        let stack = MssStack::builder().build().unwrap();
        let device = MssDevice::memory(stack.clone());
        let sim = LlgSimulator::new(&device)
            .with_current(i_rel * stack.critical_current());
        let traj = sim.run(
            Vec3::from_spherical(theta, phi),
            2e-9,
            &LlgOptions { record_every: 20, ..LlgOptions::default() },
        );
        for m in traj.magnetization() {
            prop_assert!((m.norm() - 1.0).abs() < 1e-9);
            prop_assert!(m.is_finite());
        }
    }

    /// ECC uncorrectable probability is a probability, monotone in p and
    /// anti-monotone in correction strength.
    #[test]
    fn ecc_uncorrectable_is_monotone(
        log_p in -15.0f64..-2.0,
        data_bits in 64u32..2048,
        t in 1u32..5,
    ) {
        let p = 10f64.powf(log_p);
        let weak = EccScheme::bch(t, data_bits);
        let strong = EccScheme::bch(t + 1, data_bits);
        let up = weak.uncorrectable_probability(p);
        prop_assert!((0.0..=1.0).contains(&up));
        prop_assert!(strong.uncorrectable_probability(p) <= up + 1e-300);
        prop_assert!(weak.uncorrectable_probability(2.0 * p) >= up);
    }

    /// DC solutions of random resistor ladders satisfy KCL: the source
    /// current equals the current into the ladder, and every node voltage
    /// lies between the rails.
    #[test]
    fn dc_ladder_satisfies_kcl(
        stages in 2usize..10,
        r_base in 100.0f64..10_000.0,
        vdd in 0.5f64..3.0,
    ) {
        let mut nl = Netlist::new();
        nl.add_vsource("v1", "n0", "0", Waveform::dc(vdd)).unwrap();
        for k in 0..stages {
            nl.add_resistor(
                &format!("rs{k}"),
                &format!("n{k}"),
                &format!("n{}", k + 1),
                r_base * (1.0 + k as f64 * 0.3),
            )
            .unwrap();
            nl.add_resistor(
                &format!("rg{k}"),
                &format!("n{}", k + 1),
                "0",
                2.0 * r_base,
            )
            .unwrap();
        }
        let dc = dc_operating_point(&nl).unwrap();
        let mut last = vdd;
        for k in 1..=stages {
            let v = dc.node_voltage(&format!("n{k}")).unwrap();
            prop_assert!(v >= -1e-9 && v <= last + 1e-9, "node n{k} = {v}");
            last = v;
        }
        // Source current equals the ladder input current.
        let i_src = -dc.source_current("v1").unwrap();
        let v1 = dc.node_voltage("n1").unwrap();
        let i_ladder = (vdd - v1) / r_base;
        prop_assert!((i_src - i_ladder).abs() < 1e-9 + 1e-6 * i_src.abs());
    }

    /// Complex arithmetic satisfies field axioms numerically.
    #[test]
    fn complex_field_axioms(
        ar in -10.0f64..10.0, ai in -10.0f64..10.0,
        br in -10.0f64..10.0, bi in -10.0f64..10.0,
    ) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        // Commutativity and |ab| = |a||b|.
        let ab = a * b;
        let ba = b * a;
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!((ab.abs() - a.abs() * b.abs()).abs() < 1e-9 * (1.0 + ab.abs()));
        // Division inverts multiplication away from zero.
        if b.abs() > 1e-6 {
            let q = ab / b;
            prop_assert!((q - a).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    /// The write-buffer queue behaves like a probability model: stall and
    /// occupancy stay in range, and deeper buffers never stall more.
    #[test]
    fn write_buffer_is_well_behaved(
        arrival in 0.001f64..0.3,
        drain in 1.5f64..20.0,
        depth in 1u32..24,
    ) {
        let d = evaluate_buffer(arrival, drain, depth).unwrap();
        prop_assert!((0.0..=1.0).contains(&d.stall_probability));
        prop_assert!(d.mean_occupancy >= 0.0 && d.mean_occupancy <= depth as f64);
        prop_assert!(d.effective_write_cycles >= 1.0);
        let deeper = evaluate_buffer(arrival, drain, depth + 1).unwrap();
        prop_assert!(deeper.stall_probability <= d.stall_probability + 1e-12);
    }

    /// Every point strictly inside the Stoner–Wohlfarth astroid is stable;
    /// scaling it past the boundary switches.
    #[test]
    fn astroid_boundary_separates_regions(
        hx in 0.01f64..0.95,
        frac in 0.05f64..0.9,
    ) {
        use great_mss::mtj::astroid::{crosses_astroid, easy_axis_boundary};
        let hz_boundary = easy_axis_boundary(hx);
        if hz_boundary > 1e-6 {
            prop_assert!(!crosses_astroid(hx, frac * hz_boundary * 0.999));
            prop_assert!(crosses_astroid(hx, hz_boundary * 1.001 + 1e-9));
        }
    }

    /// Retention sizing hits its target for any target within range.
    #[test]
    fn retention_sizing_round_trips(log_years in -1.0f64..2.5) {
        let base = MssStack::builder().build().unwrap();
        let target = 10f64.powf(log_years) * 365.25 * 86400.0;
        let sized = great_mss::mtj::reliability::diameter_for_retention(&base, target).unwrap();
        let achieved = great_mss::mtj::reliability::retention_seconds(&sized);
        prop_assert!((achieved.ln() - target.ln()).abs() < 1e-6);
    }
}
