//! Property-style tests on cross-crate invariants.
//!
//! Each property is exercised over a deterministic cloud of random inputs
//! drawn from the in-tree PRNG ([`great_mss::units::rng`]) — same spirit as
//! proptest, but with zero external dependencies and perfectly reproducible
//! cases (fixed seed, no shrinking needed: the failing case prints its
//! inputs).

use great_mss::mtj::llg::{LlgOptions, LlgSimulator};
use great_mss::mtj::switching::SwitchingModel;
use great_mss::mtj::{MssDevice, MssStack};
use great_mss::nvsim::buffer::evaluate_buffer;
use great_mss::spice::analysis::dc_operating_point;
use great_mss::spice::netlist::Netlist;
use great_mss::spice::waveform::Waveform;
use great_mss::units::complex::Complex;
use great_mss::units::rng::{Rng, Xoshiro256PlusPlus};
use great_mss::units::Vec3;
use great_mss::vaet::ecc::EccScheme;

/// Cases per property (proptest used 48; cheap enough to keep).
const CASES: usize = 48;

/// Runs `body` over `CASES` deterministic cases, seeding each property with
/// its own stream so adding a property never reshuffles the others.
fn for_cases(stream: u64, mut body: impl FnMut(&mut Xoshiro256PlusPlus)) {
    for case in 0..CASES {
        let mut rng = Xoshiro256PlusPlus::stream(0x0009_E77C_A5E5 + stream, case as u64);
        body(&mut rng);
    }
}

/// WER is a probability, monotone non-increasing in pulse width and
/// current, for any physical stack geometry.
#[test]
fn wer_is_monotone_probability() {
    for_cases(1, |rng| {
        let diameter_nm = rng.gen_range_f64(25.0, 70.0);
        let i_rel = rng.gen_range_f64(1.2, 4.0);
        let t_ns = rng.gen_range_f64(0.5, 40.0);
        let stack = MssStack::builder()
            .diameter(diameter_nm * 1e-9)
            .build()
            .unwrap();
        let sw = SwitchingModel::new(&stack);
        let i = i_rel * sw.critical_current();
        let t = t_ns * 1e-9;
        let wer = sw.write_error_rate(t, i);
        assert!(
            (0.0..=1.0).contains(&wer),
            "wer {wer} for d={diameter_nm}nm"
        );
        assert!(sw.write_error_rate(1.5 * t, i) <= wer + 1e-15);
        assert!(sw.write_error_rate(t, 1.2 * i) <= wer + 1e-15);
    });
}

/// Inverting the WER for a pulse width round-trips.
#[test]
fn pulse_for_wer_round_trips() {
    for_cases(2, |rng| {
        let diameter_nm = rng.gen_range_f64(30.0, 60.0);
        let i_rel = rng.gen_range_f64(1.5, 3.5);
        let log_wer = rng.gen_range_f64(-18.0, -3.0);
        let stack = MssStack::builder()
            .diameter(diameter_nm * 1e-9)
            .build()
            .unwrap();
        let sw = SwitchingModel::new(&stack);
        let i = i_rel * sw.critical_current();
        let wer = 10f64.powf(log_wer);
        let t = sw.pulse_for_wer(wer, i).unwrap();
        let back = sw.write_error_rate(t, i);
        assert!(
            (back.ln() - wer.ln()).abs() < 1e-6 * wer.ln().abs(),
            "wer {wer:e} -> t {t:e} -> {back:e}"
        );
    });
}

/// The LLG integrator preserves |m| = 1 from any starting orientation,
/// with or without spin torque.
#[test]
fn llg_preserves_unit_norm() {
    // The LLG runs are ~ms each; a smaller cloud keeps the test quick.
    let stack = MssStack::builder().build().unwrap();
    let device = MssDevice::memory(stack.clone());
    for case in 0..12 {
        let mut rng = Xoshiro256PlusPlus::stream(0x0009_E77C_A5E5 + 3, case);
        let theta = rng.gen_range_f64(0.05, 3.0);
        let phi = rng.gen_range_f64(-3.1, 3.1);
        let i_rel = rng.gen_range_f64(-3.0, 3.0);
        let sim = LlgSimulator::new(&device).with_current(i_rel * stack.critical_current());
        let traj = sim.run(
            Vec3::from_spherical(theta, phi),
            2e-9,
            &LlgOptions {
                record_every: 20,
                ..LlgOptions::default()
            },
        );
        for m in traj.magnetization() {
            assert!(
                (m.norm() - 1.0).abs() < 1e-9,
                "|m| drifted at i_rel={i_rel}"
            );
            assert!(m.is_finite());
        }
    }
}

/// ECC uncorrectable probability is a probability, monotone in p and
/// anti-monotone in correction strength.
#[test]
fn ecc_uncorrectable_is_monotone() {
    for_cases(4, |rng| {
        let log_p = rng.gen_range_f64(-15.0, -2.0);
        let data_bits = rng.gen_range_u64(64, 2048) as u32;
        let t = rng.gen_range_u64(1, 5) as u32;
        let p = 10f64.powf(log_p);
        let weak = EccScheme::bch(t, data_bits);
        let strong = EccScheme::bch(t + 1, data_bits);
        let up = weak.uncorrectable_probability(p);
        assert!((0.0..=1.0).contains(&up), "up {up} for p={p:e} t={t}");
        assert!(strong.uncorrectable_probability(p) <= up + 1e-300);
        assert!(weak.uncorrectable_probability(2.0 * p) >= up);
    });
}

/// DC solutions of random resistor ladders satisfy KCL: the source
/// current equals the current into the ladder, and every node voltage
/// lies between the rails.
#[test]
fn dc_ladder_satisfies_kcl() {
    for_cases(5, |rng| {
        let stages = rng.gen_range_u64(2, 10) as usize;
        let r_base = rng.gen_range_f64(100.0, 10_000.0);
        let vdd = rng.gen_range_f64(0.5, 3.0);
        let mut nl = Netlist::new();
        nl.add_vsource("v1", "n0", "0", Waveform::dc(vdd)).unwrap();
        for k in 0..stages {
            nl.add_resistor(
                &format!("rs{k}"),
                &format!("n{k}"),
                &format!("n{}", k + 1),
                r_base * (1.0 + k as f64 * 0.3),
            )
            .unwrap();
            nl.add_resistor(&format!("rg{k}"), &format!("n{}", k + 1), "0", 2.0 * r_base)
                .unwrap();
        }
        let dc = dc_operating_point(&nl).unwrap();
        let mut last = vdd;
        for k in 1..=stages {
            let v = dc.node_voltage(&format!("n{k}")).unwrap();
            assert!(v >= -1e-9 && v <= last + 1e-9, "node n{k} = {v}");
            last = v;
        }
        // Source current equals the ladder input current.
        let i_src = -dc.source_current("v1").unwrap();
        let v1 = dc.node_voltage("n1").unwrap();
        let i_ladder = (vdd - v1) / r_base;
        assert!((i_src - i_ladder).abs() < 1e-9 + 1e-6 * i_src.abs());
    });
}

/// Complex arithmetic satisfies field axioms numerically.
#[test]
fn complex_field_axioms() {
    for_cases(6, |rng| {
        let a = Complex::new(
            rng.gen_range_f64(-10.0, 10.0),
            rng.gen_range_f64(-10.0, 10.0),
        );
        let b = Complex::new(
            rng.gen_range_f64(-10.0, 10.0),
            rng.gen_range_f64(-10.0, 10.0),
        );
        // Commutativity and |ab| = |a||b|.
        let ab = a * b;
        let ba = b * a;
        assert!((ab - ba).abs() < 1e-9);
        assert!((ab.abs() - a.abs() * b.abs()).abs() < 1e-9 * (1.0 + ab.abs()));
        // Division inverts multiplication away from zero.
        if b.abs() > 1e-6 {
            let q = ab / b;
            assert!((q - a).abs() < 1e-6 * (1.0 + a.abs()));
        }
    });
}

/// The write-buffer queue behaves like a probability model: stall and
/// occupancy stay in range, and deeper buffers never stall more.
#[test]
fn write_buffer_is_well_behaved() {
    for_cases(7, |rng| {
        let arrival = rng.gen_range_f64(0.001, 0.3);
        let drain = rng.gen_range_f64(1.5, 20.0);
        let depth = rng.gen_range_u64(1, 24) as u32;
        let d = evaluate_buffer(arrival, drain, depth).unwrap();
        assert!((0.0..=1.0).contains(&d.stall_probability));
        assert!(d.mean_occupancy >= 0.0 && d.mean_occupancy <= depth as f64);
        assert!(d.effective_write_cycles >= 1.0);
        let deeper = evaluate_buffer(arrival, drain, depth + 1).unwrap();
        assert!(deeper.stall_probability <= d.stall_probability + 1e-12);
    });
}

/// Every point strictly inside the Stoner–Wohlfarth astroid is stable;
/// scaling it past the boundary switches.
#[test]
fn astroid_boundary_separates_regions() {
    use great_mss::mtj::astroid::{crosses_astroid, easy_axis_boundary};
    for_cases(8, |rng| {
        let hx = rng.gen_range_f64(0.01, 0.95);
        let frac = rng.gen_range_f64(0.05, 0.9);
        let hz_boundary = easy_axis_boundary(hx);
        if hz_boundary > 1e-6 {
            assert!(!crosses_astroid(hx, frac * hz_boundary * 0.999));
            assert!(crosses_astroid(hx, hz_boundary * 1.001 + 1e-9));
        }
    });
}

/// Retention sizing hits its target for any target within range.
#[test]
fn retention_sizing_round_trips() {
    let base = MssStack::builder().build().unwrap();
    for_cases(9, |rng| {
        let log_years = rng.gen_range_f64(-1.0, 2.5);
        let target = 10f64.powf(log_years) * 365.25 * 86400.0;
        let sized = great_mss::mtj::reliability::diameter_for_retention(&base, target).unwrap();
        let achieved = great_mss::mtj::reliability::retention_seconds(&sized);
        assert!(
            (achieved.ln() - target.ln()).abs() < 1e-6,
            "target {target:e}s achieved {achieved:e}s"
        );
    });
}
