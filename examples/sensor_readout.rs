//! Sensor-mode MSS with its readout chain: sweeps an out-of-plane field,
//! verifies the linear transfer against the LLG physical model, and
//! exercises the MSS-based programmable current source the paper proposes
//! for the sensor feedback loop.
//!
//! ```sh
//! cargo run --release --example sensor_readout
//! ```

use great_mss::mtj::llg::{LlgOptions, LlgSimulator};
use great_mss::mtj::{MssDevice, MssStack};
use great_mss::pdk::cells::current_source_deck;
use great_mss::pdk::tech::{TechNode, TechParams};
use great_mss::spice::ac::{ac_analysis, log_sweep};
use great_mss::spice::analysis::{Transient, TransientOptions};
use great_mss::spice::netlist::Netlist;
use great_mss::spice::waveform::Waveform;
use great_mss::units::consts::{am_to_oe, oe_to_am};
use great_mss::units::Vec3;
use mss_mtj::resistance::MtjState;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stack = MssStack::builder().build()?;
    let sensor = MssDevice::sensor(stack.clone())?;
    println!(
        "sensor-mode MSS: {:.0} nm pillar, bias {:.0} Oe (Hk_eff = {:.0} Oe)",
        sensor.stack().diameter() * 1e9,
        sensor.bias().field_oe(),
        am_to_oe(sensor.stack().hk_eff())
    );

    // Transfer curve: Stoner–Wohlfarth analytic vs LLG relaxation.
    println!(
        "\n{:>10} | {:>10} | {:>10} | {:>12}",
        "H_z (Oe)", "m_z (SW)", "m_z (LLG)", "R (ohm)"
    );
    for oe in [-150.0, -75.0, 0.0, 75.0, 150.0] {
        let h = oe_to_am(oe);
        let mz_sw = sensor.equilibrium_mz(h)?;
        let sim = LlgSimulator::new(&sensor).with_applied_field(Vec3::new(0.0, 0.0, h));
        let traj = sim.run(Vec3::unit_x(), 15e-9, &LlgOptions::default());
        let mz_llg = traj.tail_mean_mz(0.2);
        let r = sensor.sensor_resistance(h, 0.05)?;
        println!("{oe:>10.1} | {mz_sw:>10.4} | {mz_llg:>10.4} | {r:>12.1}");
    }

    // The readout feedback: an MSS-based programmable current source whose
    // level is set by a memory-mode junction.
    let tech = TechParams::node(TechNode::N45);
    println!("\nprogrammable current source (feedback DAC):");
    for state in [MtjState::Parallel, MtjState::Antiparallel] {
        let deck = current_source_deck(&tech, &stack, state)?;
        let (dt, stop) = deck.tran.expect("deck has .tran");
        let res = Transient::new(&deck.netlist)?.run(&TransientOptions::new(dt, stop))?;
        let i_out = res.source_current("VOUT")?.last().copied().unwrap_or(0.0);
        println!(
            "  programmed {state:?}: output current {:.2} uA",
            i_out.abs() * 1e6
        );
    }

    // Readout bandwidth: the sensor MTJ driving the interface RC — an AC
    // small-signal sweep finds the -3 dB corner of the front end.
    let r_sensor = sensor.sensor_resistance(0.0, 0.05)?;
    let mut nl = Netlist::new();
    nl.add_vsource("vsig", "sig", "0", Waveform::dc(0.05))?;
    nl.add_resistor("rmtj", "sig", "node", r_sensor)?;
    nl.add_capacitor("cpar", "node", "0", 50e-15)?; // pad + amp input
    let ac = ac_analysis(&nl, "vsig", &log_sweep(1e5, 100e9, 200))?;
    let corner = ac
        .corner_frequency("node")?
        .expect("front end must roll off");
    println!(
        "
readout front-end bandwidth: {:.1} MHz (-3 dB, R_mtj = {:.0} ohm, C = 50 fF)",
        corner / 1e6,
        r_sensor
    );
    Ok(())
}
