//! Oscillator-mode MSS: bias-field retargeting for RF generation.
//!
//! Sweeps the permanent-magnet bias field, showing the tilt reaching the
//! paper's ~30° at H_b = H_k/2, and runs the LLG physical model to measure
//! the precession frequency against the analytic estimate.
//!
//! ```sh
//! cargo run --release --example sto_oscillator
//! ```

use great_mss::mtj::llg::{LlgOptions, LlgSimulator};
use great_mss::mtj::{BiasMagnet, MssDevice, MssStack};
use great_mss::units::fmt::Eng;
use great_mss::units::Vec3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stack = MssStack::builder().build()?;
    let hk = stack.hk_eff();
    println!(
        "oscillator-mode MSS sweep (Hk_eff = {:.0} Oe)\n",
        great_mss::units::consts::am_to_oe(hk)
    );
    println!(
        "{:>10} | {:>10} | {:>14} | {:>14}",
        "Hb/Hk", "tilt (deg)", "f analytic", "f LLG"
    );
    for ratio in [0.2, 0.35, 0.5, 0.65, 0.8] {
        let device =
            MssDevice::oscillator_with_bias(stack.clone(), BiasMagnet::with_field(ratio * hk))?;
        let tilt = device.equilibrium_tilt_degrees();
        let f_est = device.oscillator_frequency_estimate();
        // Ring-down run: kick the magnetization off equilibrium and count
        // precession cycles.
        let sim = LlgSimulator::new(&device);
        let m0 = Vec3::from_spherical(tilt.to_radians() + 0.15, 0.1);
        let traj = sim.run(
            m0,
            4e-9,
            &LlgOptions {
                record_every: 1,
                ..LlgOptions::default()
            },
        );
        let f_llg = traj
            .estimate_frequency()
            .map(|f| Eng(f, "Hz").to_string())
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{ratio:>10.2} | {tilt:>10.1} | {:>14} | {:>14}",
            Eng(f_est, "Hz").to_string(),
            f_llg
        );
    }
    println!(
        "\nAt Hb = Hk/2 the tilt is ~30 deg — the paper's spin-transfer-oscillator bias point."
    );
    Ok(())
}
