//! Quickstart: one Multifunctional Standardized Stack, three functions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use great_mss::mtj::{reliability, switching::SwitchingModel, MssDevice, MssStack};
use great_mss::units::fmt::Eng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One baseline stack — the "standardized" part of the MSS.
    let stack = MssStack::builder().diameter(40e-9).build()?;
    println!("MSS baseline stack: 40 nm pillar");
    println!("  thermal stability  Δ  = {:.1}", stack.thermal_stability());
    println!(
        "  critical current  Ic0 = {}",
        Eng(stack.critical_current(), "A")
    );
    println!(
        "  R_P / R_AP            = {} / {}",
        Eng(stack.resistance_parallel(), "ohm"),
        Eng(stack.resistance_antiparallel(), "ohm")
    );

    // --- Memory mode: bistable storage ---
    let memory = MssDevice::memory(stack.clone());
    println!("\n[memory mode]");
    println!(
        "  retention            = {:.0} years",
        reliability::retention_years(memory.stack())
    );
    let sw = SwitchingModel::new(memory.stack());
    let i_write = 2.5 * sw.critical_current();
    println!(
        "  switching time @2.5x Ic0 = {}",
        Eng(sw.mean_switching_time(i_write)?, "s")
    );
    println!(
        "  pulse for WER 1e-9       = {}",
        Eng(sw.pulse_for_wer(1e-9, i_write)?, "s")
    );

    // --- Sensor mode: permanent magnets pull the free layer in-plane ---
    let sensor = MssDevice::sensor(stack.clone())?;
    println!(
        "\n[sensor mode]  (bias magnet {:.0} Oe)",
        sensor.bias().field_oe()
    );
    println!(
        "  sensitivity          = {:.2} ohm/Oe over ±{:.0} Oe",
        sensor.sensor_sensitivity()? * great_mss::units::consts::oe_to_am(1.0),
        great_mss::units::consts::am_to_oe(sensor.sensor_linear_range())
    );

    // --- Oscillator mode: half-anisotropy bias tilts the layer ~30° ---
    let osc = MssDevice::oscillator(stack);
    println!(
        "\n[oscillator mode] (bias magnet {:.0} Oe)",
        osc.bias().field_oe()
    );
    println!(
        "  equilibrium tilt     = {:.1} deg (paper: ~30 deg)",
        osc.equilibrium_tilt_degrees()
    );
    println!(
        "  frequency estimate   = {}",
        Eng(osc.oscillator_frequency_estimate(), "Hz")
    );
    Ok(())
}
