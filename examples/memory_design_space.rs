//! VAET-STT design-space exploration: sweep array organisations under
//! different optimisation targets and constraints, then show the
//! variation-aware distributions of the chosen design.
//!
//! ```sh
//! cargo run --release --example memory_design_space
//! ```

use great_mss::mtj::MssStack;
use great_mss::nvsim::config::MemoryConfig;
use great_mss::nvsim::explore::{explore, DesignConstraints, OptimizationTarget};
use great_mss::nvsim::model::MemoryTechnology;
use great_mss::pdk::charlib::characterize;
use great_mss::pdk::tech::{TechNode, TechParams};
use great_mss::units::fmt::Eng;
use great_mss::vaet::context::VaetContext;
use great_mss::vaet::montecarlo::{run, MonteCarloOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let node = TechNode::N45;
    let tech = TechParams::node(node);
    let stack = MssStack::builder().build()?;
    let lib = characterize(node, &stack)?;
    let technology = MemoryTechnology::SttMram(lib);
    let base = MemoryConfig::ram(1 << 20, 128)?; // 1 MiB macro, 128-bit word

    println!("design-space exploration of a 1 MiB STT-MRAM macro at {node}\n");
    for target in [
        OptimizationTarget::ReadLatency,
        OptimizationTarget::WriteEnergy,
        OptimizationTarget::Area,
        OptimizationTarget::ReadEdp,
    ] {
        let exp = explore(
            &tech,
            &base,
            &technology,
            target,
            &DesignConstraints::default(),
        )?;
        let b = &exp.best;
        println!(
            "{target:?}: subarray {}x{} -> read {} | write {} | area {:.3} mm2 ({} candidates)",
            b.config.subarray_rows,
            b.config.subarray_cols,
            Eng(b.metrics.read_latency, "s"),
            Eng(b.metrics.write_latency, "s"),
            b.metrics.area * 1e6,
            exp.candidates.len()
        );
    }

    // Constrained run: cap the read latency, minimise energy.
    let tight = DesignConstraints {
        max_read_latency: Some(1.2e-9),
        ..Default::default()
    };
    let exp = explore(
        &tech,
        &base,
        &technology,
        OptimizationTarget::ReadEnergy,
        &tight,
    )?;
    println!(
        "\nread-latency-capped (<= 1.2 ns) energy optimum: subarray {}x{}, read {}",
        exp.best.config.subarray_rows,
        exp.best.config.subarray_cols,
        Eng(exp.best.metrics.read_latency, "s")
    );

    // Variation-aware view of the standard Table-1 array.
    println!("\nvariation-aware distributions (1024x1024 array):");
    let ctx = VaetContext::standard(node)?;
    let report = run(
        &ctx,
        &MonteCarloOptions {
            samples: 500,
            seed: 99,
            word_bits: None,
        },
    )?;
    println!("{}", report.to_table());
    Ok(())
}
