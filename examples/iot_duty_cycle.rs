//! Normally-off IoT duty cycling: when does checkpointing into non-volatile
//! flip-flops beat retaining state in leaky CMOS during sleep?
//!
//! This is the system-level pitch of the paper's introduction — battery-
//! operated smart sensors that are asleep most of the time. With MSS-based
//! NVFFs the node can power-gate completely; the cost is the backup/restore
//! energy, characterised here through the real circuit flow.
//!
//! ```sh
//! cargo run --release --example iot_duty_cycle
//! ```

use great_mss::mtj::MssStack;
use great_mss::nvsim::sram::SramCell;
use great_mss::pdk::charlib::characterize_nvff;
use great_mss::pdk::tech::{TechNode, TechParams};
use great_mss::units::fmt::Eng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechParams::node(TechNode::N45);
    let stack = MssStack::builder().build()?;

    // Characterise one NVFF (backup of both junctions + PCSA restore).
    println!("characterising the MSS non-volatile flip-flop at 45 nm ...");
    let nvff = characterize_nvff(&tech, &stack)?;
    println!(
        "  backup : {} / {}",
        Eng(nvff.backup_latency, "s"),
        Eng(nvff.backup_energy, "J")
    );
    println!(
        "  restore: {} / {}",
        Eng(nvff.restore_latency, "s"),
        Eng(nvff.restore_energy, "J")
    );

    // A small MCU state: 4 KiB of architectural state in registers/SRAM.
    let state_bits = 4 * 1024 * 8u64;
    let sram = SramCell::from_tech(&tech);
    let retain_power = state_bits as f64 * sram.leakage * tech.vdd;
    let checkpoint_energy = state_bits as f64 * (nvff.backup_energy + nvff.restore_energy);
    let break_even = checkpoint_energy / retain_power;

    println!("\nIoT node with {} bits of state:", state_bits);
    println!(
        "  sleep retention power (SRAM/FF leakage): {}",
        Eng(retain_power, "W")
    );
    println!(
        "  checkpoint + wake energy (NVFF):         {}",
        Eng(checkpoint_energy, "J")
    );
    println!(
        "  break-even sleep interval:               {}",
        Eng(break_even, "s")
    );

    println!("\nduty-cycle comparison (one wake event per interval):");
    println!(
        "{:>14} | {:>16} | {:>16} | {:>8}",
        "sleep time", "retain energy", "checkpoint", "winner"
    );
    for factor in [0.01, 0.1, 1.0, 10.0, 100.0] {
        let t_sleep = break_even * factor;
        let e_retain = retain_power * t_sleep;
        let winner = if e_retain > checkpoint_energy {
            "NVFF"
        } else {
            "retain"
        };
        println!(
            "{:>14} | {:>16} | {:>16} | {:>8}",
            Eng(t_sleep, "s").to_string(),
            Eng(e_retain, "J").to_string(),
            Eng(checkpoint_energy, "J").to_string(),
            winner
        );
    }
    println!(
        "\nSleep longer than {} and the normally-off MSS node wins — the\n\
         co-integrated NVM is what makes that checkpoint cheap.",
        Eng(break_even, "s")
    );
    Ok(())
}
