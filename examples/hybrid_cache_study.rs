//! The MAGPIE cross-layer flow (paper Sec. IV): evaluate SRAM vs STT-MRAM
//! L2 scenarios on a big.LITTLE platform for a pair of kernels, printing the
//! Fig. 11-style breakdown and Fig. 12-style normalised merits.
//!
//! ```sh
//! cargo run --release --example hybrid_cache_study
//! ```

use great_mss::core::flow::{MagpieFlow, MagpieInputs};
use great_mss::core::scenario::Scenario;
use great_mss::gemsim::workload::Kernel;
use great_mss::pdk::tech::TechNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("MAGPIE hybrid cache study: bodytrack + streamcluster, 4 scenarios, 45 nm\n");
    let flow = MagpieFlow::new(MagpieInputs {
        node: TechNode::N45,
        kernels: vec![Kernel::bodytrack(), Kernel::streamcluster()],
        scenarios: Scenario::ALL.to_vec(),
        seed: 0xCAFE,
        sample_cap: 150_000,
        ..MagpieInputs::defaults()
    })?;
    println!(
        "cell library: write {:.2} ns / read {:.2} ns per cell\n",
        flow.cell_library().write.latency * 1e9,
        flow.cell_library().read.latency * 1e9
    );
    let report = flow.run()?;
    println!("{}", report.fig11_table("bodytrack"));
    println!("{}", report.fig12_table());
    Ok(())
}
