//! The Sec. IV-A circuit-level flow, end to end: netlist template →
//! `mss-spice` transient → MDL measurements → cell configuration file →
//! parse-back. This is the exact loop of the paper's Fig. 10 left column.
//!
//! ```sh
//! cargo run --release --example cell_characterisation
//! ```

use great_mss::mtj::MssStack;
use great_mss::pdk::charlib::{characterize, CellLibrary};
use great_mss::pdk::tech::TechNode;
use great_mss::spice::mdl::Report;
use great_mss::units::fmt::Eng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stack = MssStack::builder().build()?;
    for node in TechNode::ALL {
        println!("characterising the 1T-1MTJ cell at {node} ...");
        let lib = characterize(node, &stack)?;
        println!(
            "  access device width: {:.0} nm ({:.1} F)",
            lib.access_width * 1e9,
            lib.access_width
                / match node {
                    TechNode::N45 => 45e-9,
                    TechNode::N65 => 65e-9,
                }
        );
        println!(
            "  write: {} / {} @ {}",
            Eng(lib.write.latency, "s"),
            Eng(lib.write.energy, "J"),
            Eng(lib.write.current, "A")
        );
        println!(
            "  read : {} / {} @ {}",
            Eng(lib.read.latency, "s"),
            Eng(lib.read.energy, "J"),
            Eng(lib.read.current, "A")
        );
        println!("  cell area: {:.4} um^2", lib.cell_area * 1e12);

        // The "output measurement file ... parsed to extract the required
        // cell level parameters" round trip.
        let text = lib.to_report().to_text();
        println!("\n  cell configuration file:\n{}", indent(&text, "    "));
        let parsed = CellLibrary::from_report(&Report::parse(&text)?)?;
        assert_eq!(parsed.node, lib.node);
        println!("  parse-back check: OK\n");
    }
    Ok(())
}

fn indent(text: &str, pad: &str) -> String {
    text.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
