//! `great-mss` — umbrella crate for the Rust reproduction of *"Using
//! Multifunctional Standardized Stack as Universal Spintronic Technology for
//! IoT"* (Tahoori et al., DATE 2018).
//!
//! Re-exports every layer of the cross-layer flow under one roof:
//!
//! - [`exec`] — the deterministic scoped-thread parallel runtime,
//! - [`obs`] — zero-dependency observability (spans, counters, NDJSON reports),
//! - [`pipe`] — the content-addressed stage pipeline cache (memoized
//!   cross-layer artifacts, incremental sweeps),
//! - [`mtj`] — the MSS compact model (memory / sensor / oscillator modes),
//! - [`spice`] — netlist-level MNA circuit simulation with MDL measurements,
//! - [`pdk`] — CMOS + MTJ process design kit, standard cells, characterisation,
//! - [`nvsim`] — memory-array latency/energy/area estimation,
//! - [`vaet`] — variation-aware estimation (Monte Carlo, ECC, RER/WER),
//! - [`fault`] — deterministic seeded fault injection (write/read-disturb/
//!   transient/stuck-at) with ECC cross-validation campaigns,
//! - [`gemsim`] — manycore performance simulation with Parsec-like kernels,
//! - [`mcpat`] — architecture-level power/area estimation,
//! - [`core`] — the MAGPIE cross-layer hybrid design-exploration flow.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! experiment index.

pub use mss_core as core;
pub use mss_exec as exec;
pub use mss_fault as fault;
pub use mss_gemsim as gemsim;
pub use mss_mcpat as mcpat;
pub use mss_mtj as mtj;
pub use mss_nvsim as nvsim;
pub use mss_obs as obs;
pub use mss_pdk as pdk;
pub use mss_pipe as pipe;
pub use mss_spice as spice;
pub use mss_units as units;
pub use mss_vaet as vaet;
